//! Doctor: fleet diagnosis on the chaos rig.
//!
//! Runs one scenario per injected fault class (plus a clean baseline)
//! through the always-on observability plane — flight recorder, rolling
//! health windows, anomaly detectors — and asserts the detection
//! matrix: every fault class surfaces as exactly its signature anomaly
//! (plus a small allowed set of incidental ones), and the clean
//! baseline raises nothing at all. Each signature anomaly's
//! dump-on-anomaly bundle must contain the originating `chaos.*` cause
//! chain. Fully deterministic per seed: running twice with the same
//! seed prints the same bytes.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin doctor [seed]
//! ```

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_chaos::{spawn_chaos_kv, spawn_failover_kv, ChaosConfig, FailoverChaosConfig, FaultPlan};
use rfp_core::{IntegrityConfig, OverloadConfig};
use rfp_kvstore::{spawn_cores_kv, CoresConfig};
use rfp_simnet::{
    AnomalyConfig, AnomalyDetector, AnomalyKind, DumpBundle, SimSpan, SimTime, Simulation,
};

/// Faults strike after this much warm-up…
const FAULT_AT: SimTime = SimTime::from_nanos(2_000_000);
/// …and last this long.
const FAULT_SPAN: SimSpan = SimSpan::millis(1);
/// Server downtime of the crash scenario.
const DOWNTIME: SimSpan = SimSpan::micros(300);

/// One row of the detection matrix.
struct Scenario {
    name: &'static str,
    plan: Option<FaultPlan>,
    /// Arm credit-based admission + deadline shedding (overload row).
    overload: bool,
    /// The anomaly class this fault must surface as, and the root
    /// flight-recorder event its dump bundle must chain back to.
    signature: Option<(AnomalyKind, &'static str)>,
    /// Incidental classes the fault may legitimately also raise.
    allowed: &'static [AnomalyKind],
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    use AnomalyKind::*;
    vec![
        Scenario {
            name: "clean",
            plan: None,
            overload: false,
            signature: None,
            allowed: &[],
        },
        // A straggling server core leaves deposited requests sitting
        // unserved: the client's fetch polls come back empty over and
        // over — the retry spike is the *distinctive* symptom (latency
        // rises too, but that is the shared symptom of every slowdown).
        Scenario {
            name: "straggler",
            plan: Some(FaultPlan::new(seed).straggler(FAULT_AT, FAULT_SPAN, 0, 16.0)),
            overload: false,
            signature: Some((RetrySpike, "chaos.straggler")),
            // A straggler is degraded-but-alive, so the rootless
            // regression it causes legitimately co-fires as gray.
            allowed: &[LatencyRegression, GrayFailure],
        },
        // A loss burst on RC never surfaces as errors or retries — the
        // transport retransmits under the covers — so the only client-
        // visible symptom is the latency regression those geometric
        // retransmit rounds produce.
        Scenario {
            name: "loss_burst",
            plan: Some(FaultPlan::new(seed).loss_burst(FAULT_AT, FAULT_SPAN, 0, 0.7)),
            overload: false,
            signature: Some((LatencyRegression, "chaos.loss_burst")),
            // RC retransmission leaves no hard-failure root, so the
            // regression also carries the gray-failure signature.
            allowed: &[RetrySpike, GrayFailure],
        },
        // A fail-slow serve loop: every call still completes, nothing
        // errors, sheds, or reconnects — the distinctive symptom is the
        // *rootless* regression the gray-failure detector exists for.
        Scenario {
            name: "gray_slow_server",
            plan: Some(FaultPlan::new(seed).slow_server(FAULT_AT, FAULT_SPAN, 0, 16.0)),
            overload: false,
            signature: Some((GrayFailure, "chaos.slow_server")),
            allowed: &[LatencyRegression, RetrySpike],
        },
        // A fail-slow link: the wire itself lags while the RC transport
        // stays error-free — gray again, rooted at `chaos.slow_link`.
        Scenario {
            name: "gray_slow_link",
            plan: Some(FaultPlan::new(seed).slow_link(FAULT_AT, FAULT_SPAN, 0, 20_000)),
            overload: false,
            signature: Some((GrayFailure, "chaos.slow_link")),
            allowed: &[LatencyRegression, RetrySpike],
        },
        Scenario {
            name: "bit_flip",
            plan: Some(FaultPlan::new(seed).bit_flip(FAULT_AT, FAULT_SPAN, 0, 0.05)),
            overload: false,
            signature: Some((CorruptionBurst, "chaos.bit_flip")),
            allowed: &[LatencyRegression, RetrySpike],
        },
        Scenario {
            name: "overload",
            plan: Some(FaultPlan::new(seed).straggler(FAULT_AT, FAULT_SPAN, 0, 64.0)),
            overload: true,
            signature: Some((OverloadShedding, "chaos.straggler")),
            allowed: &[LatencyRegression, RetrySpike, CreditStarvation],
        },
        Scenario {
            name: "warm_crash",
            plan: Some(FaultPlan::new(seed).crash(FAULT_AT, DOWNTIME, 0, true)),
            overload: false,
            signature: Some((ConnectionDrop, "chaos.crash")),
            allowed: &[LatencyRegression, RetrySpike],
        },
    ]
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# doctor: fault-class detection matrix on the chaos rig");
    println!(
        "# seed={seed} fault_at=2ms fault_span={}ms",
        FAULT_SPAN.as_nanos() / 1_000_000
    );
    println!("scenario,completed,calls_win,p99_us,retry_rate,expected,detected,bundle_bytes");

    let bench = bench_registry();
    for scenario in scenarios(seed) {
        let mut sim = Simulation::new(seed);
        let mut cfg = ChaosConfig {
            seed,
            // Integrity on everywhere so corrupt fetches are detected
            // and refetched rather than surfaced (the bit-flip row
            // would otherwise panic in the response decoder).
            integrity: IntegrityConfig {
                enabled: true,
                ..IntegrityConfig::default()
            },
            ..ChaosConfig::default()
        };
        if scenario.overload {
            cfg.overload = OverloadConfig {
                enabled: true,
                deadline: SimSpan::micros(25),
                ..OverloadConfig::default()
            };
        }
        let rig = spawn_chaos_kv(&mut sim, &cfg, scenario.plan.as_ref());

        // Phase 1 — warm-up: establish each connection's baseline.
        sim.run_for(FAULT_AT.since(SimTime::ZERO));
        let detector = AnomalyDetector::new(AnomalyConfig::default());
        detector.set_baseline(&rig.health.report(sim.handle().now()));

        // Phase 2 — the fault window; scan while its effects are still
        // inside the rolling health window.
        sim.run_for(FAULT_SPAN);
        let scan_now = sim.handle().now();
        let report = rig.health.report(scan_now);
        let anomalies = detector.scan(&report);

        // Detection matrix assertions.
        let mut detected: Vec<AnomalyKind> = anomalies.iter().map(|a| a.kind).collect();
        detected.sort();
        detected.dedup();
        match scenario.signature {
            None => assert!(
                anomalies.is_empty(),
                "clean baseline raised anomalies: {anomalies:?}"
            ),
            Some((expected, root_kind)) => {
                assert!(
                    detected.contains(&expected),
                    "{}: expected {} anomaly, detected {:?} (report: {:?})",
                    scenario.name,
                    expected.as_str(),
                    detected,
                    report.conns
                );
                for kind in &detected {
                    assert!(
                        *kind == expected || scenario.allowed.contains(kind),
                        "{}: unexpected {} anomaly (allowed: {:?})",
                        scenario.name,
                        kind.as_str(),
                        scenario.allowed
                    );
                }
                // The injected fault's root event must be in the ring.
                assert!(
                    rig.recorder.kind_count(root_kind) >= 1,
                    "{}: no {} root event: {:?}",
                    scenario.name,
                    root_kind,
                    rig.recorder.kind_counts()
                );
            }
        }

        // Dump-on-anomaly: the bundle of the first signature anomaly
        // must carry the originating cause chain.
        let mut bundle_bytes = 0usize;
        if let Some((expected, root_kind)) = scenario.signature {
            let anomaly = anomalies
                .iter()
                .find(|a| a.kind == expected)
                .expect("signature anomaly present (asserted above)");
            let snap = rig.registry.snapshot();
            let bundle = DumpBundle {
                anomaly,
                recorder: Some(&rig.recorder),
                metrics: Some(&snap),
                spans: Some(&rig.spans),
                window: (FAULT_AT, scan_now),
            };
            let mut dump = Vec::new();
            bundle.write(&mut dump).expect("write bundle to vec");
            let text = String::from_utf8(dump).expect("bundle is utf8");
            assert!(
                text.contains(root_kind),
                "{}: dump bundle lost the {} cause chain",
                scenario.name,
                root_kind
            );
            bundle_bytes = text.len();
        }

        // Phase 3 — run out the tail so `completed` reflects a healed
        // rig (the fault window is over; the fleet must keep serving).
        sim.run_for(SimSpan::millis(3));

        let win = report.conns.first();
        println!(
            "{},{},{},{},{:.3},{},{},{}",
            scenario.name,
            rig.state.completed.get(),
            win.map(|c| c.calls).unwrap_or(0),
            win.map(|c| c.p99_ns / 1_000).unwrap_or(0),
            win.map(|c| c.retry_rate).unwrap_or(0.0),
            scenario
                .signature
                .map(|(k, _)| k.as_str())
                .unwrap_or("none"),
            if detected.is_empty() {
                "none".to_string()
            } else {
                detected
                    .iter()
                    .map(|k| k.as_str())
                    .collect::<Vec<_>>()
                    .join("+")
            },
            bundle_bytes,
        );

        // Stable-shape export: every (scenario, kind) cell of the
        // matrix gets a counter, zero or not.
        for kind in AnomalyKind::all() {
            let count = anomalies.iter().filter(|a| a.kind == kind).count() as u64;
            bench
                .counter(&format!("bench.doctor.{}.{}", scenario.name, kind.as_str()))
                .add(count);
        }
        bench
            .counter(&format!("bench.doctor.{}.completed", scenario.name))
            .add(rig.state.completed.get());
    }

    // ---- failover rows: the replicated primary/backup rig ----
    //
    // Same phases as above, but on the failover rig: a clean run (zero
    // false positives — nothing may look like a failover when nobody
    // failed over) and a primary crash whose signature anomaly is
    // `failover`, with a dump bundle that chains the clients'
    // `recovery.failover` reaction back to the `chaos.crash` root.
    for (name, faulted) in [("failover_clean", false), ("failover", true)] {
        let mut sim = Simulation::new(seed);
        let cfg = FailoverChaosConfig {
            seed,
            // Enough budget that the clients are still mid-workload
            // through warm-up, fault window, and tail.
            ops_per_client: 4_000,
            ..FailoverChaosConfig::default()
        };
        let plan =
            faulted.then(|| FaultPlan::new(seed).crash(FAULT_AT, SimSpan::millis(100), 0, true));
        let promote_at = faulted.then(|| FAULT_AT + SimSpan::micros(60));
        let rig = spawn_failover_kv(&mut sim, &cfg, plan.as_ref(), promote_at);

        sim.run_for(FAULT_AT.since(SimTime::ZERO));
        let detector = AnomalyDetector::new(AnomalyConfig::default());
        detector.set_baseline(&rig.health.report(sim.handle().now()));
        sim.run_for(FAULT_SPAN);
        let scan_now = sim.handle().now();
        let report = rig.health.report(scan_now);
        let anomalies = detector.scan(&report);

        let mut detected: Vec<AnomalyKind> = anomalies.iter().map(|a| a.kind).collect();
        detected.sort();
        detected.dedup();
        let mut bundle_bytes = 0usize;
        if faulted {
            use AnomalyKind::*;
            assert!(
                detected.contains(&Failover),
                "failover: expected failover anomaly, detected {detected:?} (report: {:?})",
                report.conns
            );
            for kind in &detected {
                assert!(
                    matches!(
                        kind,
                        Failover | ConnectionDrop | LatencyRegression | RetrySpike
                    ),
                    "failover: unexpected {} anomaly",
                    kind.as_str()
                );
            }
            assert!(
                rig.recorder.kind_count("chaos.crash") >= 1,
                "failover: no chaos.crash root event: {:?}",
                rig.recorder.kind_counts()
            );
            let anomaly = anomalies
                .iter()
                .find(|a| a.kind == Failover)
                .expect("failover anomaly present (asserted above)");
            let snap = rig.registry.snapshot();
            let bundle = DumpBundle {
                anomaly,
                recorder: Some(&rig.recorder),
                metrics: Some(&snap),
                spans: Some(&rig.spans),
                window: (FAULT_AT, scan_now),
            };
            let mut dump = Vec::new();
            bundle.write(&mut dump).expect("write bundle to vec");
            let text = String::from_utf8(dump).expect("bundle is utf8");
            for needle in ["chaos.crash", "recovery.failover"] {
                assert!(
                    text.contains(needle),
                    "failover: dump bundle lost the {needle} cause chain"
                );
            }
            bundle_bytes = text.len();
        } else {
            assert!(
                anomalies.is_empty(),
                "clean failover rig raised anomalies: {anomalies:?}"
            );
        }

        sim.run_for(SimSpan::millis(3));

        let win = report.conns.first();
        println!(
            "{},{},{},{},{:.3},{},{},{}",
            name,
            rig.state.completed.get(),
            win.map(|c| c.calls).unwrap_or(0),
            win.map(|c| c.p99_ns / 1_000).unwrap_or(0),
            win.map(|c| c.retry_rate).unwrap_or(0.0),
            if faulted { "failover" } else { "none" },
            if detected.is_empty() {
                "none".to_string()
            } else {
                detected
                    .iter()
                    .map(|k| k.as_str())
                    .collect::<Vec<_>>()
                    .join("+")
            },
            bundle_bytes,
        );

        for kind in AnomalyKind::all() {
            let count = anomalies.iter().filter(|a| a.kind == kind).count() as u64;
            bench
                .counter(&format!("bench.doctor.{}.{}", name, kind.as_str()))
                .add(count);
        }
        bench
            .counter(&format!("bench.doctor.{name}.completed"))
            .add(rig.state.completed.get());
    }

    // ---- core-balance rows: the multi-core serve reactor rig ----
    //
    // `cores_clean`: four reactor cores under a uniform keyspace with
    // stealing on — a balanced server must raise nothing (zero false
    // positives). `cores_hot`: the Zipf(0.99) keyspace concentrated on
    // partition 0 with stealing *disabled* — EREW skew nobody levels,
    // which must surface as exactly `core_imbalance`.
    for (name, skew, steal) in [
        ("cores_clean", None, true),
        ("cores_hot", Some(0.99), false),
    ] {
        let mut sim = Simulation::new(seed);
        let cfg = CoresConfig {
            cores: 4,
            steal,
            skew,
            seed,
            ..CoresConfig::default()
        };
        let sys = spawn_cores_kv(&mut sim, &cfg);
        sim.run_for(SimSpan::millis(1));
        sys.reset_measurements();
        sim.run_for(SimSpan::millis(2));

        let report = sys.skew_report(sim.now());
        let detector = AnomalyDetector::new(AnomalyConfig::default());
        let anomalies = detector.scan_cores(&report);
        let mut detected: Vec<AnomalyKind> = anomalies.iter().map(|a| a.kind).collect();
        detected.sort();
        detected.dedup();
        if steal {
            assert!(
                anomalies.is_empty(),
                "balanced reactor raised anomalies: {anomalies:?}"
            );
        } else {
            assert_eq!(
                detected,
                vec![AnomalyKind::CoreImbalance],
                "hot-partition EREW run must surface as exactly core_imbalance \
                 (skew report: {:?})",
                report.cores
            );
        }

        println!(
            "{},{},0,0,0.000,{},{},0",
            name,
            sys.stats.completed.get(),
            if steal { "none" } else { "core_imbalance" },
            if detected.is_empty() {
                "none".to_string()
            } else {
                detected
                    .iter()
                    .map(|k| k.as_str())
                    .collect::<Vec<_>>()
                    .join("+")
            },
        );

        for kind in AnomalyKind::all() {
            let count = anomalies.iter().filter(|a| a.kind == kind).count() as u64;
            bench
                .counter(&format!("bench.doctor.{}.{}", name, kind.as_str()))
                .add(count);
        }
        bench
            .counter(&format!("bench.doctor.{name}.completed"))
            .add(sys.stats.completed.get());
    }

    let path = emit_bench_json("doctor").expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}
