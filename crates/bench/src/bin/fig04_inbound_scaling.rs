//! Figure 4: server in-bound IOPS vs client thread count.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig04(&mut out).expect("write to stdout");
}
