//! Figure 4: server in-bound IOPS vs client thread count.

fn main() {
    rfp_bench::run_experiment("fig04_inbound_scaling");
}
