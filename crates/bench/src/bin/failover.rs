//! Failover sweep: the replicated KV rig under crash and partition
//! faults, across ack policies and load, plus the steady-state
//! replication tax on the headline 32 B bar.
//!
//! Part one runs the chaos failover rig (primary/backup replication,
//! epoch-fenced promotion, client-side replica routing) through
//! `{primary_crash, partition} x {sync, async} x {light, heavy}` and
//! reports, per cell, the safety counters, the failover count and
//! timing, and whether the recorded operation history passes the
//! linearizability checker. Sync cells must show **zero lost acked
//! writes, zero stale reads, and a linearizable history** — asserted on
//! every run. Async cells report the same columns to expose the
//! acked-but-unreplicated window; nothing is asserted about their
//! losses (that trade is the point of measuring them).
//!
//! Part two measures the replication tax: a GET-heavy (95/5) closed
//! loop with 16 concurrent workers and 32 B values against the same
//! primary, with replication off / sync / async. The sync bar must stay
//! within 5% of the replication-off bar.
//!
//! Fully deterministic per seed: running twice with the same seed
//! prints the same bytes.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin failover [seed]
//! ```

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_chaos::{spawn_failover_kv, FailoverChaosConfig, FaultPlan};
use rfp_core::{connect, RfpConfig};
use rfp_kvstore::replica::{
    backup_serve_loop, primary_serve_loop, AckPolicy, BackupRole, PrimaryRole, ReplicationConfig,
};
use rfp_kvstore::{KvRequest, Partition};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{derive_seed, SimSpan, SimTime, Simulation};
use rfp_workload::check_history;

/// Faults strike after this much warm-up…
const FAULT_AT: SimTime = SimTime::from_nanos(40_000);
/// …and the failure detector promotes the backup this much later.
const DETECT: SimSpan = SimSpan::micros(60);
/// Asymmetric-cut duration for partition scenarios.
const PARTITION_SPAN: SimSpan = SimSpan::micros(400);
/// Every failover scenario runs this long (well past every client's op
/// budget, so stragglers finish even with faults in the way).
const WINDOW: SimSpan = SimSpan::millis(40);
/// Acceptance bound on client-observed failover time.
const FAILOVER_BUDGET: SimSpan = SimSpan::millis(5);

/// Workers in the replication-tax closed loop (the headline W=16 bar).
const TAX_WORKERS: usize = 16;
/// Value size of the tax workload (the headline 32 B bar).
const TAX_VALUE: usize = 32;
/// PUT fraction of the tax workload (GET-heavy, as the paper runs it).
const TAX_PUT_RATIO: f64 = 0.05;
/// Measurement window of each tax run.
const TAX_WINDOW: SimSpan = SimSpan::millis(5);
/// Maximum tolerated sync-replication throughput tax.
const TAX_BOUND: f64 = 0.05;

fn ack_name(ack: AckPolicy) -> &'static str {
    match ack {
        AckPolicy::Sync => "sync",
        AckPolicy::Async => "async",
    }
}

fn run_scenario(seed: u64, scenario: &str, ack: AckPolicy, clients: usize) {
    let mut sim = Simulation::new(seed);
    let cfg = FailoverChaosConfig {
        clients,
        replication: ReplicationConfig {
            enabled: true,
            ack,
            ..ReplicationConfig::default()
        },
        seed,
        ..FailoverChaosConfig::default()
    };
    let (plan, promote_at) = match scenario {
        // The primary dies for good: downtime outlives the run.
        "crash" => (
            FaultPlan::new(seed).crash(FAULT_AT, SimSpan::millis(100), 0, true),
            Some(FAULT_AT + DETECT),
        ),
        // A both-direction cut between the first client machine and the
        // primary; the primary is alive, so nobody promotes.
        "partition" => (
            FaultPlan::new(seed)
                .partition(FAULT_AT, PARTITION_SPAN, 2, 0)
                .partition(FAULT_AT, PARTITION_SPAN, 0, 2),
            None,
        ),
        other => panic!("unknown scenario {other}"),
    };
    let rig = spawn_failover_kv(&mut sim, &cfg, Some(&plan), promote_at);
    sim.run_for(WINDOW);

    let st = &rig.state;
    assert_eq!(
        st.done_clients.get(),
        clients,
        "{scenario}/{}/{clients}: a client never finished",
        ack_name(ack)
    );
    let history = st.history();
    let linearizable = check_history(&history).is_ok();
    let failover_us = rig
        .max_failover_time()
        .map(|s| s.as_nanos() / 1_000)
        .unwrap_or(0);
    println!(
        "{scenario},{},{clients},{},{},{},{},{},{},{failover_us},{},{},{}",
        ack_name(ack),
        st.completed.get(),
        st.acked_puts.get(),
        st.failed_calls.get(),
        st.lost_acked.get(),
        st.stale_reads.get(),
        rig.total_failovers(),
        st.promoted_at.get().is_some() as u32,
        history.len(),
        linearizable as u32,
    );

    let bench = bench_registry();
    let row = format!("bench.failover.{scenario}_{}_{clients}", ack_name(ack));
    for (metric, value) in [
        ("completed", st.completed.get()),
        ("lost_acked", st.lost_acked.get()),
        ("stale_reads", st.stale_reads.get()),
        ("failovers", rig.total_failovers()),
        ("failover_us_max", failover_us),
        ("linearizable", linearizable as u64),
    ] {
        bench.counter(&format!("{row}.{metric}")).add(value);
    }

    // The headline safety claims. Sync mode: an acked write is a
    // replicated write, so no crash or cut may lose one, no read may
    // run backwards, and the surviving history must linearize.
    if matches!(ack, AckPolicy::Sync) {
        assert_eq!(
            st.lost_acked.get(),
            0,
            "{scenario}/sync/{clients}: an acked write was lost"
        );
        assert_eq!(
            st.stale_reads.get(),
            0,
            "{scenario}/sync/{clients}: a read ran backwards"
        );
        assert!(
            linearizable,
            "{scenario}/sync/{clients}: history failed the linearizability checker"
        );
    }
    if scenario == "crash" {
        assert!(
            rig.total_failovers() >= 1,
            "{scenario}/{}/{clients}: nobody failed over",
            ack_name(ack)
        );
        let t = rig.max_failover_time().expect("failover was timed");
        assert!(
            t <= FAILOVER_BUDGET,
            "{scenario}/{}/{clients}: failover took {t:?}, budget {FAILOVER_BUDGET:?}",
            ack_name(ack)
        );
    }
}

/// Completed ops of a healthy GET-heavy closed loop against the
/// replicated primary, with replication off (`None`) or on; also
/// returns how many log entries the primary shipped, so a "0% tax"
/// can be told apart from "replication never engaged".
fn tax_run(seed: u64, repl: Option<AckPolicy>) -> (u64, u64) {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 3);
    let (primary_m, backup_m, client_m) =
        (cluster.machine(0), cluster.machine(1), cluster.machine(2));
    let partition = Rc::new(RefCell::new(Partition::new(1024)));
    let backup_part = Rc::new(RefCell::new(Partition::new(1024)));
    let plain = || RfpConfig {
        enable_mode_switch: false,
        ..RfpConfig::default()
    };

    let (ship, repl_conn) = connect(
        &primary_m,
        &backup_m,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        plain(),
    );
    ship.set_reconnect(cluster.qp_factory(0, 1));

    let completed = Rc::new(Cell::new(0u64));
    let mut conns = Vec::with_capacity(TAX_WORKERS);
    for w in 0..TAX_WORKERS {
        let (cl, sc) = connect(
            &client_m,
            &primary_m,
            cluster.qp(2, 0),
            cluster.qp(0, 2),
            plain(),
        );
        conns.push(Rc::new(sc));
        let thread = client_m.thread(format!("tax-w{w}"));
        let done = Rc::clone(&completed);
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x7A_0000 + w as u64));
        sim.spawn(async move {
            let key = format!("t{w}").into_bytes();
            let value = [0xABu8; TAX_VALUE];
            // Seed the key so the GET stream observes real hits.
            let req = KvRequest::Put {
                key: &key,
                value: &value,
            }
            .encode();
            cl.call(&thread, &req).await;
            loop {
                let req = if rng.gen::<f64>() < TAX_PUT_RATIO {
                    KvRequest::Put {
                        key: &key,
                        value: &value,
                    }
                    .encode()
                } else {
                    KvRequest::Get { key: &key }.encode()
                };
                cl.call(&thread, &req).await;
                done.set(done.get() + 1);
            }
        });
    }

    let role = Rc::new(PrimaryRole::default());
    sim.spawn(primary_serve_loop(
        primary_m.thread("tax-primary"),
        conns,
        Rc::clone(&partition),
        Rc::new(ship),
        ReplicationConfig {
            enabled: repl.is_some(),
            ack: repl.unwrap_or(AckPolicy::Sync),
            ..ReplicationConfig::default()
        },
        Rc::clone(&role),
        SimSpan::nanos(100),
    ));
    sim.spawn(backup_serve_loop(
        backup_m.thread("tax-backup"),
        Rc::new(repl_conn),
        Vec::new(),
        backup_part,
        Rc::new(BackupRole::default()),
        SimSpan::nanos(100),
    ));

    sim.run_for(TAX_WINDOW);
    assert!(!role.solo.get(), "tax rig lost its backup mid-measurement");
    (completed.get(), role.shipped_entries.get())
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# failover sweep: replicated KV rig under crash/partition faults");
    println!(
        "# seed={seed} fault_at={}us detect={}us window={}ms",
        FAULT_AT.as_nanos() / 1_000,
        DETECT.as_nanos() / 1_000,
        WINDOW.as_nanos() / 1_000_000
    );
    println!(
        "scenario,ack,clients,completed,acked_puts,failed_calls,lost_acked,stale_reads,\
         failovers,promoted,failover_us_max,hist_ops,linearizable"
    );
    for scenario in ["crash", "partition"] {
        for ack in [AckPolicy::Sync, AckPolicy::Async] {
            for clients in [2usize, 4] {
                run_scenario(seed, scenario, ack, clients);
            }
        }
    }

    println!("# replication tax: GET-heavy 32B closed loop, {TAX_WORKERS} workers");
    println!("mode,ops,shipped,mops_per_s,tax_pct");
    let (off, _) = tax_run(seed, None);
    let secs = TAX_WINDOW.as_nanos() as f64 / 1e9;
    let bench = bench_registry();
    let mut sync_ops = 0;
    for (mode, (ops, shipped)) in [
        ("off", (off, 0)),
        ("sync", tax_run(seed, Some(AckPolicy::Sync))),
        ("async", tax_run(seed, Some(AckPolicy::Async))),
    ] {
        let tax = 1.0 - ops as f64 / off as f64;
        println!(
            "{mode},{ops},{shipped},{:.3},{:.2}",
            ops as f64 / secs / 1e6,
            tax * 100.0
        );
        if mode != "off" {
            assert!(shipped > 0, "{mode}: replication never shipped an entry");
        }
        bench
            .counter(&format!("bench.failover.tax.{mode}_ops"))
            .add(ops);
        if mode == "sync" {
            sync_ops = ops;
            // Whole basis points are enough resolution for the pin.
            bench
                .counter("bench.failover.tax.sync_tax_bp")
                .add((tax * 10_000.0).max(0.0) as u64);
        }
    }
    assert!(
        sync_ops as f64 >= off as f64 * (1.0 - TAX_BOUND),
        "sync replication tax exceeds {:.0}%: {sync_ops} vs {off} ops",
        TAX_BOUND * 100.0
    );

    let path = emit_bench_json("failover").expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}
