//! Figure 15: Jakiro client CPU utilisation vs process time.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig15(&mut out).expect("write to stdout");
}
