//! Figure 15: Jakiro client CPU utilisation vs process time.

fn main() {
    rfp_bench::run_experiment("fig15_client_cpu");
}
