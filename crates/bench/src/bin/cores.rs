//! Multi-core scaling sweep: reactor cores × key skew, with and
//! without work stealing.
//!
//! The serve reactor partitions keys EREW-style (each core owns its
//! partition's connections outright); this sweep measures the two
//! regimes that design must survive:
//!
//! - **uniform** keys must *scale*: 4 cores ≥ 3× the aggregate 32-byte
//!   GET throughput of 1 core (near-linear, minus scan and fan-out
//!   overheads);
//! - **Zipf(0.99) concentrated on one partition** is EREW's worst
//!   case. Without stealing the hot core saturates and the closed-loop
//!   clients drag the whole system down to little more than single-core
//!   throughput (the collapse). With stealing, idle siblings drain the
//!   hot core's rings — paying the modeled cross-core handoff per
//!   request — and aggregate throughput stays within 2.5× of the
//!   uniform run.
//!
//! The skewed keyspace is *constructed* (see
//! [`rfp_kvstore::build_keyspace`]): hashing alone would spray the hot
//! ranks across partitions and hide the effect the paper's §4.4.3
//! load-balance argument warns about.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin cores [seed]
//! ```

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_kvstore::{spawn_cores_kv, CoresConfig, CoresKv};
use rfp_simnet::{SimSpan, Simulation};

/// Core counts swept.
const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// The paper's skew exponent.
const THETA: f64 = 0.99;
const WARMUP: SimSpan = SimSpan::millis(1);
const WINDOW: SimSpan = SimSpan::millis(4);

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Uniform,
    Zipf { steal: bool },
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Uniform => "uniform",
            Mode::Zipf { steal: true } => "zipf",
            Mode::Zipf { steal: false } => "zipf_nosteal",
        }
    }
}

struct Point {
    cores: usize,
    mode: Mode,
    kops: f64,
    steals: u64,
    handoffs: u64,
    /// Hottest core's served count over the per-core mean (1.0 = flat).
    imbalance_milli: u64,
    served: Vec<u64>,
}

fn run_point(seed: u64, cores: usize, mode: Mode) -> Point {
    let cfg = CoresConfig {
        cores,
        steal: !matches!(mode, Mode::Zipf { steal: false }),
        skew: match mode {
            Mode::Uniform => None,
            Mode::Zipf { .. } => Some(THETA),
        },
        seed,
        ..CoresConfig::default()
    };
    let mut sim = Simulation::new(seed);
    let sys = spawn_cores_kv(&mut sim, &cfg);
    sim.run_for(WARMUP);
    sys.reset_measurements();
    sim.run_for(WINDOW);
    let done = sys.stats.completed.get();
    assert!(
        done > 0,
        "{cores}-core {} run made no progress",
        mode.label()
    );
    let report = sys.skew_report(sim.now());
    let steals: u64 = (0..cores).map(|i| sys.reactor.steals(i)).sum();
    Point {
        cores,
        mode,
        kops: done as f64 / WINDOW.as_secs_f64() / 1e3,
        steals,
        handoffs: sys.reactor.handoffs(),
        imbalance_milli: (report.imbalance() * 1e3) as u64,
        served: sys.served_per_core(),
    }
}

fn find(points: &[Point], cores: usize, mode: Mode) -> &Point {
    points
        .iter()
        .find(|p| p.cores == cores && p.mode == mode)
        .expect("swept point")
}

/// Byte-stable fingerprint of one run for the CI determinism check.
fn fingerprint(sys: &CoresKv) -> String {
    let mut buf = Vec::new();
    sys.registry
        .snapshot()
        .write_csv(&mut buf)
        .expect("in-memory CSV");
    String::from_utf8(buf).expect("CSV is UTF-8")
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# cores sweep: reactor cores x skew, 32B GETs");
    println!(
        "# seed={seed} warmup={}ms window={}ms theta={THETA}",
        WARMUP.as_nanos() / 1_000_000,
        WINDOW.as_nanos() / 1_000_000,
    );
    println!("cores,mode,kops,steals,handoffs,imbalance_milli,served_per_core");

    let bench = bench_registry();
    let mut points = Vec::new();
    for &n in &CORE_COUNTS {
        let modes: &[Mode] = if n == 1 {
            // Nothing to steal on one core; the skewed order degenerates
            // to a relabeled uniform keyspace.
            &[Mode::Uniform]
        } else {
            &[
                Mode::Uniform,
                Mode::Zipf { steal: true },
                Mode::Zipf { steal: false },
            ]
        };
        for &mode in modes {
            let p = run_point(seed, n, mode);
            println!(
                "{},{},{:.1},{},{},{},{}",
                p.cores,
                p.mode.label(),
                p.kops,
                p.steals,
                p.handoffs,
                p.imbalance_milli,
                p.served
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("|"),
            );
            for (metric, value) in [
                ("ops", (p.kops * 1e3) as u64),
                ("steals", p.steals),
                ("handoffs", p.handoffs),
                ("imbalance_milli", p.imbalance_milli),
            ] {
                bench
                    .counter(&format!("bench.cores.c{n}.{}.{metric}", p.mode.label()))
                    .add(value);
            }
            points.push(p);
        }
    }

    // Near-linear uniform scaling: 4 cores carry at least 3x the
    // aggregate throughput of 1.
    let one = find(&points, 1, Mode::Uniform);
    let four = find(&points, 4, Mode::Uniform);
    assert!(
        four.kops >= 3.0 * one.kops,
        "uniform 4-core must scale >=3x over 1 core: {:.1} vs {:.1} kops",
        four.kops,
        one.kops
    );

    // Skew tolerance: with stealing, the all-hot-keys-on-one-core
    // worst case stays within 2.5x of uniform throughput...
    let skew_steal = find(&points, 4, Mode::Zipf { steal: true });
    assert!(
        skew_steal.kops * 2.5 >= four.kops,
        "4-core zipf with stealing degraded more than 2.5x off uniform: \
         {:.1} vs {:.1} kops",
        skew_steal.kops,
        four.kops
    );
    assert!(
        skew_steal.steals > 0 && skew_steal.handoffs > 0,
        "the skewed run must actually exercise the steal path"
    );

    // ...while without stealing the hot core throttles the whole
    // closed loop (the collapse stealing exists to prevent).
    let skew_nosteal = find(&points, 4, Mode::Zipf { steal: false });
    assert!(
        skew_steal.kops >= 1.2 * skew_nosteal.kops,
        "stealing must materially beat EREW-only under skew: \
         {:.1} vs {:.1} kops",
        skew_steal.kops,
        skew_nosteal.kops
    );
    assert_eq!(skew_nosteal.steals, 0, "steal-off run must not steal");

    // The no-steal skewed run is visibly imbalanced; the uniform run
    // is not (these are the signals the CoreSkew health rollup and the
    // doctor's core_imbalance row key off).
    assert!(
        skew_nosteal.imbalance_milli > 2_000,
        "no-steal skew should concentrate >2x mean load on the hot core \
         (got {} milli)",
        skew_nosteal.imbalance_milli
    );
    assert!(
        four.imbalance_milli < 1_500,
        "uniform 4-core load should stay near-flat (got {} milli)",
        four.imbalance_milli
    );

    // Determinism: the same seed replays the same simulation
    // byte-for-byte (registry rows compared).
    let det_cfg = CoresConfig {
        cores: 4,
        skew: Some(THETA),
        seed,
        ..CoresConfig::default()
    };
    let mut fps = Vec::new();
    for _ in 0..2 {
        let mut sim = Simulation::new(seed);
        let sys = spawn_cores_kv(&mut sim, &det_cfg);
        sim.run_for(WARMUP);
        sys.reset_measurements();
        sim.run_for(WINDOW);
        fps.push(fingerprint(&sys));
    }
    assert_eq!(fps[0], fps[1], "same-seed runs must be byte-identical");

    let path = emit_bench_json("cores").expect("write BENCH_cores.json");
    println!("# wrote {}", path.display());
    println!("# all core-scaling assertions passed");
}
