//! Fleet-scaling sweep: logical clients 10² → 10⁵ over a fixed, small
//! physical footprint.
//!
//! The dedicated-connection designs the paper compares against pay QP
//! state, registered memory, and scan work **per client**. The mux
//! layer ([`RfpMux`](rfp_core::RfpMux)) claims all three are per
//! *physical connection* instead, with logical clients costing nothing
//! while idle. This sweep measures exactly that:
//!
//! - **server memory** (registered bytes, MRs) and **QP endpoints**
//!   must stay *flat* — zero marginal cost per added logical client —
//!   with QPs bounded by the ≤ 64 budget;
//! - **scan cost per served request** (`serve.scan.slots` per
//!   completed call) must stay flat: the sharded poller groups walk
//!   `M` rings regardless of fleet size;
//! - **goodput** must hold a flat plateau across the whole sweep.
//!
//! A second scenario checks tenant isolation: one tenant turns hot
//! (flooding drivers, zero think time) while seven stay cold. The
//! per-tenant admission domains ([`TenantCredits`](rfp_core::TenantCredits))
//! must keep every cold tenant within 20% of the goodput it saw in the
//! hot-free baseline run.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin fleet [seed]
//! ```

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_core::{OverloadConfig, RfpConfig};
use rfp_kvstore::{spawn_fleet_kv, FleetConfig, FleetKv, SystemConfig};
use rfp_simnet::{SimSpan, Simulation};
use rfp_workload::WorkloadSpec;

/// Logical-client counts swept (the paper-scale fleet axis).
const FLEET_SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];
/// Physical connections — the entire server-side footprint.
const PHYSICAL: usize = 24;
/// Server poller groups (disjoint connection shards).
const GROUPS: usize = 4;
/// Tenants in every scenario.
const TENANTS: u32 = 8;
/// Concurrently-active drivers in the sweep (fleet duty cycle:
/// `drivers ≪ logical_clients`).
const DRIVERS: usize = 32;
const WARMUP: SimSpan = SimSpan::millis(2);
const WINDOW: SimSpan = SimSpan::millis(10);

fn base_cfg(seed: u64) -> SystemConfig {
    let base = SystemConfig::default();
    SystemConfig {
        spec: WorkloadSpec {
            key_count: 4_000,
            ..WorkloadSpec::paper_default()
        },
        rfp: RfpConfig {
            overload: OverloadConfig {
                enabled: true,
                ..OverloadConfig::default()
            },
            ..base.rfp
        },
        seed,
        ..base
    }
}

struct Point {
    n: usize,
    kops: f64,
    scan_slots_per_req: f64,
    server_mr_bytes: u64,
    server_qp_endpoints: u64,
    leases: u64,
    evictions: u64,
}

fn run_window(sim: &mut Simulation, sys: &FleetKv) -> u64 {
    sim.run_for(WARMUP);
    sys.reset_measurements();
    sim.run_for(WINDOW);
    sys.stats.completed.get()
}

fn sweep_point(seed: u64, n: usize) -> Point {
    let cfg = base_cfg(seed);
    let fleet = FleetConfig {
        logical_clients: n,
        physical_conns: PHYSICAL,
        poller_groups: GROUPS,
        tenants: TENANTS,
        drivers: DRIVERS,
        hot_tenant: None,
        hot_drivers: 0,
    };
    let mut sim = Simulation::new(seed);
    let sys = spawn_fleet_kv(&mut sim, &cfg, &fleet);
    let done = run_window(&mut sim, &sys);
    assert!(done > 0, "fleet of {n} made no progress");
    let snap = sys.registry.snapshot();
    let scan_slots = snap.scalar("serve.scan.slots").unwrap_or(0.0);
    Point {
        n,
        kops: done as f64 / WINDOW.as_secs_f64() / 1e3,
        scan_slots_per_req: scan_slots / done as f64,
        server_mr_bytes: sys.server_machine.registered_bytes(),
        server_qp_endpoints: sys.server_machine.qp_endpoints(),
        leases: sys.muxes.iter().map(|m| m.leases()).sum(),
        evictions: sys.muxes.iter().map(|m| m.evictions()).sum(),
    }
}

/// Per-tenant goodput of one isolation run; `hot` adds flooding
/// drivers on tenant 0 while cold tenants keep their think time.
fn isolation_run(seed: u64, hot: bool) -> Vec<u64> {
    let mut cfg = base_cfg(seed);
    // Cold tenants offer moderate load so the baseline server has
    // headroom; isolation is then purely the admission layer's job.
    cfg.think_time = SimSpan::micros(20);
    let fleet = FleetConfig {
        logical_clients: 1_000,
        physical_conns: PHYSICAL,
        poller_groups: GROUPS,
        tenants: TENANTS,
        drivers: 16,
        hot_tenant: hot.then_some(0),
        hot_drivers: 8,
    };
    let mut sim = Simulation::new(seed);
    let sys = spawn_fleet_kv(&mut sim, &cfg, &fleet);
    run_window(&mut sim, &sys);
    sys.tenant_goodput()
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# fleet sweep: logical clients over {PHYSICAL} physical conns, {GROUPS} poller groups, {TENANTS} tenants");
    println!(
        "# seed={seed} drivers={DRIVERS} warmup={}ms window={}ms",
        WARMUP.as_nanos() / 1_000_000,
        WINDOW.as_nanos() / 1_000_000,
    );
    println!("n,kops,scan_slots_per_req,server_mr_bytes,server_qp_endpoints,leases,evictions");

    let bench = bench_registry();
    let mut points = Vec::new();
    for &n in &FLEET_SIZES {
        let p = sweep_point(seed, n);
        println!(
            "{},{:.1},{:.2},{},{},{},{}",
            p.n,
            p.kops,
            p.scan_slots_per_req,
            p.server_mr_bytes,
            p.server_qp_endpoints,
            p.leases,
            p.evictions
        );
        for (metric, value) in [
            ("ops", (p.kops * 1e3) as u64),
            (
                "scan_slots_per_req_milli",
                (p.scan_slots_per_req * 1e3) as u64,
            ),
            ("server_mr_bytes", p.server_mr_bytes),
            ("server_qp_endpoints", p.server_qp_endpoints),
            ("leases", p.leases),
            ("evictions", p.evictions),
        ] {
            bench
                .counter(&format!("bench.fleet.n{n}.{metric}"))
                .add(value);
        }
        points.push(p);
    }

    // Flat server footprint: zero marginal memory or QP state per added
    // logical client (the whole point of leasing slot rings).
    let first = &points[0];
    for p in &points[1..] {
        assert_eq!(
            p.server_mr_bytes, first.server_mr_bytes,
            "server registered memory must not grow with logical clients"
        );
        assert_eq!(
            p.server_qp_endpoints, first.server_qp_endpoints,
            "server QP state must not grow with logical clients"
        );
    }
    assert!(
        first.server_qp_endpoints <= 64,
        "QP budget blown: {}",
        first.server_qp_endpoints
    );

    // Flat scan cost per served request: a 1000× larger fleet may not
    // cost the pollers more than 25% extra scan work per request.
    let scan_lo = points
        .iter()
        .map(|p| p.scan_slots_per_req)
        .fold(f64::MAX, f64::min);
    let scan_hi = points
        .iter()
        .map(|p| p.scan_slots_per_req)
        .fold(0.0, f64::max);
    assert!(
        scan_hi <= scan_lo * 1.25,
        "scan cost per request must stay flat: {scan_lo:.2}..{scan_hi:.2}"
    );

    // Flat goodput plateau across the whole sweep.
    let kops_lo = points.iter().map(|p| p.kops).fold(f64::MAX, f64::min);
    let kops_hi = points.iter().map(|p| p.kops).fold(0.0, f64::max);
    assert!(
        kops_hi <= kops_lo * 1.25,
        "goodput must plateau across fleet sizes: {kops_lo:.1}..{kops_hi:.1} kops"
    );

    // Oversubscribed sweeps must actually exercise lease movement.
    assert!(
        points.iter().all(|p| p.evictions > 0),
        "sweep points must churn leases"
    );

    // Hot-tenant isolation: per-tenant credit domains keep every cold
    // tenant within 20% of its hot-free goodput.
    println!("# hot-tenant isolation: tenant 0 floods, 1..{TENANTS} stay cold");
    println!("tenant,baseline_ok,hot_ok,ratio_permille");
    let baseline = isolation_run(seed, false);
    let with_hot = isolation_run(seed, true);
    let mut min_ratio = u64::MAX;
    for t in 0..TENANTS as usize {
        let ratio_permille = with_hot[t] * 1000 / baseline[t].max(1);
        println!("{t},{},{},{ratio_permille}", baseline[t], with_hot[t]);
        if t > 0 {
            min_ratio = min_ratio.min(ratio_permille);
            assert!(
                with_hot[t] * 5 >= baseline[t] * 4,
                "cold tenant {t} lost more than 20% to the hot tenant: \
                 {} vs baseline {}",
                with_hot[t],
                baseline[t]
            );
        }
    }
    assert!(
        with_hot[0] > baseline[0],
        "the hot tenant's extra drivers must add goodput ({} vs {})",
        with_hot[0],
        baseline[0]
    );
    bench
        .counter("bench.fleet.hot.cold_ratio_permille_min")
        .add(min_ratio);
    bench.counter("bench.fleet.hot.hot_ok").add(with_hot[0]);
    bench
        .counter("bench.fleet.hot.cold_ok_total")
        .add(with_hot[1..].iter().sum::<u64>());

    let path = emit_bench_json("fleet").expect("write BENCH_fleet.json");
    println!("# wrote {}", path.display());
    println!("# all fleet-scaling assertions passed");
}
