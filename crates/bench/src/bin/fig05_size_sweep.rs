//! Figure 5: IOPS vs payload size for both directions.

fn main() {
    rfp_bench::run_experiment("fig05_size_sweep");
}
