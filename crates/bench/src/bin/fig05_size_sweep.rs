//! Figure 5: IOPS vs payload size for both directions.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig05(&mut out).expect("write to stdout");
}
