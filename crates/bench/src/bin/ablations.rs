//! Runs the design-choice ablations (transports, NIC generations, EREW,
//! parameter selection). With a directory argument, each is also
//! written to `<dir>/<name>.csv`.

use std::io::Write;

fn main() {
    let dir = std::env::args().nth(1);
    let mut out = std::io::stdout().lock();
    for (name, f) in rfp_bench::ablations::ABLATIONS {
        writeln!(out, "## {name}").expect("stdout");
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let mut file = std::fs::File::create(format!("{dir}/{name}.csv")).expect("create csv");
            f(&mut file).expect("write csv");
            let body = std::fs::read_to_string(format!("{dir}/{name}.csv")).expect("read back");
            out.write_all(body.as_bytes()).expect("stdout");
        } else {
            f(&mut out).expect("stdout");
        }
    }
    let path = rfp_bench::telemetry::emit_bench_json("ablations").expect("write bench json");
    writeln!(out, "# bench registry exported to {}", path.display()).expect("stdout");
}
