//! Figure 18: Jakiro under different fetch sizes F.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig18(&mut out).expect("write to stdout");
}
