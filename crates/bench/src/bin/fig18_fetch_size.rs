//! Figure 18: Jakiro under different fetch sizes F.

fn main() {
    rfp_bench::run_experiment("fig18_fetch_size");
}
