//! Figure 20: latency CDF under the skewed workload.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig20(&mut out).expect("write to stdout");
}
