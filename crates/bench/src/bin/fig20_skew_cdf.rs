//! Figure 20: latency CDF under the skewed workload.

fn main() {
    rfp_bench::run_experiment("fig20_skew_cdf");
}
