//! Interactive experiment explorer: run any of the KV systems at an
//! arbitrary configuration point and print a full measurement report.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin explore -- \
//!     --system jakiro --server-threads 6 --client-machines 7 \
//!     --clients-per-machine 5 --value-size 32 --get-pct 95 \
//!     [--skew] [--process-us 0] [--fetch-size 256] [--retry 5] \
//!     [--shards 1] [--loss-pct 0] [--window-ms 4] [--seed 42] \
//!     [--telemetry <dir>]
//! ```
//!
//! Systems: `jakiro`, `server-reply`, `memcached`, `pilaf`, `herd`,
//! `jakiro-shared`, `sharded` (uses `--shards`).
//!
//! `--telemetry <dir>` additionally writes the full telemetry bundle —
//! `metrics.csv`, `metrics.json`, `timeseries.csv` (fixed-interval
//! samples across the window) and `trace.json` (request spans, Chrome
//! trace-event format) — into `<dir>`. Output is byte-deterministic for
//! a given configuration and seed.

use std::path::PathBuf;

use rfp_bench::kvrun::{run_kv, run_kv_telemetry, KvRun};
use rfp_kvstore::{
    spawn_herd, spawn_jakiro, spawn_jakiro_shared, spawn_memcached, spawn_pilaf,
    spawn_server_reply_kv, spawn_sharded_jakiro, SystemConfig,
};
use rfp_simnet::{SimSpan, Simulation};
use rfp_workload::{KeyDist, OpMix, ValueSize, WorkloadSpec};

#[derive(Debug)]
struct Args {
    system: String,
    server_threads: usize,
    client_machines: usize,
    clients_per_machine: usize,
    value_size: usize,
    get_pct: f64,
    skew: bool,
    process_us: u64,
    fetch_size: Option<usize>,
    retry: Option<u32>,
    shards: usize,
    loss_pct: f64,
    window_ms: u64,
    seed: u64,
    keys: u64,
    telemetry: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            system: "jakiro".into(),
            server_threads: 6,
            client_machines: 7,
            clients_per_machine: 5,
            value_size: 32,
            get_pct: 95.0,
            skew: false,
            process_us: 0,
            fetch_size: None,
            retry: None,
            shards: 1,
            loss_pct: 0.0,
            window_ms: 4,
            seed: 42,
            keys: 2_000,
            telemetry: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--system" => args.system = value("--system")?,
            "--server-threads" => {
                args.server_threads = value(&flag)?.parse().map_err(|e| format!("{e}"))?
            }
            "--client-machines" => {
                args.client_machines = value(&flag)?.parse().map_err(|e| format!("{e}"))?
            }
            "--clients-per-machine" => {
                args.clients_per_machine = value(&flag)?.parse().map_err(|e| format!("{e}"))?
            }
            "--value-size" => {
                args.value_size = value(&flag)?.parse().map_err(|e| format!("{e}"))?
            }
            "--get-pct" => args.get_pct = value(&flag)?.parse().map_err(|e| format!("{e}"))?,
            "--skew" => args.skew = true,
            "--process-us" => {
                args.process_us = value(&flag)?.parse().map_err(|e| format!("{e}"))?
            }
            "--fetch-size" => {
                args.fetch_size = Some(value(&flag)?.parse().map_err(|e| format!("{e}"))?)
            }
            "--retry" => args.retry = Some(value(&flag)?.parse().map_err(|e| format!("{e}"))?),
            "--shards" => args.shards = value(&flag)?.parse().map_err(|e| format!("{e}"))?,
            "--loss-pct" => args.loss_pct = value(&flag)?.parse().map_err(|e| format!("{e}"))?,
            "--window-ms" => args.window_ms = value(&flag)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value(&flag)?.parse().map_err(|e| format!("{e}"))?,
            "--keys" => args.keys = value(&flag)?.parse().map_err(|e| format!("{e}"))?,
            "--telemetry" => args.telemetry = Some(value(&flag)?.into()),
            "--help" | "-h" => {
                return Err("see the module docs at the top of explore.rs".into());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn config_from(args: &Args) -> SystemConfig {
    let mut cfg = SystemConfig {
        server_threads: args.server_threads,
        client_machines: args.client_machines,
        clients_per_machine: args.clients_per_machine,
        spec: WorkloadSpec {
            key_count: args.keys,
            keys: if args.skew {
                KeyDist::Zipf(0.99)
            } else {
                KeyDist::Uniform
            },
            values: ValueSize::Fixed(args.value_size),
            mix: OpMix {
                get_fraction: args.get_pct / 100.0,
            },
            ..WorkloadSpec::paper_default()
        },
        extra_process: SimSpan::micros(args.process_us),
        seed: args.seed,
        ..SystemConfig::default()
    };
    if let Some(f) = args.fetch_size {
        cfg.rfp.fetch_size = f;
    }
    if let Some(r) = args.retry {
        cfg.rfp.retry_threshold = r;
    }
    cfg.profile.nic.unreliable_loss = args.loss_pct / 100.0;
    cfg
}

fn report(run: &KvRun) {
    println!("throughput          : {:.3} MOPS", run.mops);
    println!(
        "latency mean/p50/p99: {:.2} / {:.2} / {:.2} us",
        run.mean_latency_us, run.p50_us, run.p99_us
    );
    println!("server in-bound/req : {:.3}", run.inbound_per_req);
    println!("server out-bound/req: {:.3}", run.outbound_per_req);
    println!("client CPU          : {:.1}%", run.client_util * 100.0);
    if run.mean_attempts > 0.0 {
        println!(
            "fetch attempts mean/max: {:.3} / {} (N>1 on {:.3}% of calls)",
            run.mean_attempts,
            run.max_attempts,
            run.frac_retries_gt1 * 100.0
        );
        println!("mode switches       : {}", run.switches_to_reply);
    }
    if run.bypass_ops_per_get > 0.0 {
        println!(
            "bypass ops per GET  : {:.3} ({} crc retries)",
            run.bypass_ops_per_get, run.crc_retries
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let cfg = config_from(&args);
    let warmup = SimSpan::millis(1);
    let window = SimSpan::millis(args.window_ms);

    println!("# system={} {args:?}", args.system);
    let measure = |spawn: fn(&mut Simulation, &SystemConfig) -> rfp_kvstore::KvSystem| match &args
        .telemetry
    {
        Some(dir) => {
            let run =
                run_kv_telemetry(spawn, &cfg, warmup, window, dir).expect("write telemetry bundle");
            println!("# telemetry written to {}", dir.display());
            run
        }
        None => run_kv(spawn, &cfg, warmup, window),
    };
    let run = match args.system.as_str() {
        "jakiro" => measure(spawn_jakiro),
        "server-reply" => measure(spawn_server_reply_kv),
        "memcached" => measure(spawn_memcached),
        "pilaf" => measure(spawn_pilaf),
        "herd" => measure(spawn_herd),
        "jakiro-shared" => measure(spawn_jakiro_shared),
        "sharded" => {
            if args.telemetry.is_some() {
                eprintln!("note: --telemetry is not supported for the sharded deployment");
            }
            // The sharded deployment has its own measurement path.
            let mut sim = Simulation::new(cfg.seed);
            let sys = spawn_sharded_jakiro(&mut sim, &cfg, args.shards);
            sim.run_for(warmup);
            sys.reset_measurements();
            let t0 = sim.now();
            sim.run_for(window);
            let secs = (sim.now() - t0).as_secs_f64();
            println!(
                "throughput          : {:.3} MOPS across {} shards",
                sys.stats.completed.get() as f64 / secs / 1e6,
                args.shards
            );
            println!("server in-bound/req : {:.3}", sys.inbound_ops_per_request());
            println!("server out-bound ops: {}", sys.server_outbound_ops());
            return;
        }
        other => {
            eprintln!("error: unknown system {other}");
            std::process::exit(2);
        }
    };
    report(&run);
}
