//! Figure 19: throughput vs GET percentage (Zipf .99).

fn main() {
    rfp_bench::run_experiment("fig19_skew");
}
