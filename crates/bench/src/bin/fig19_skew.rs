//! Figure 19: throughput vs GET percentage (Zipf .99).

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig19(&mut out).expect("write to stdout");
}
