//! Regenerates every figure and table of the paper in one run.
//!
//! With a directory argument, each experiment is additionally written
//! to `<dir>/<name>.csv` for inclusion in EXPERIMENTS.md.

use std::io::Write;

fn main() {
    let dir = std::env::args().nth(1);
    let mut out = std::io::stdout().lock();
    for (name, f) in rfp_bench::figures::EXPERIMENTS {
        writeln!(out, "## {name}").expect("stdout");
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir).expect("create output dir");
            let mut file = std::fs::File::create(format!("{dir}/{name}.csv")).expect("create csv");
            f(&mut file).expect("write csv");
            // Echo to stdout as well.
            let body = std::fs::read_to_string(format!("{dir}/{name}.csv")).expect("read back");
            out.write_all(body.as_bytes()).expect("stdout");
        } else {
            f(&mut out).expect("stdout");
        }
    }
    let path = rfp_bench::telemetry::emit_bench_json("all_figures").expect("write bench json");
    writeln!(out, "# bench registry exported to {}", path.display()).expect("stdout");
}
