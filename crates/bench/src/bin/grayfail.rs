//! Gray-failure sweep: the replicated KV rig under fail-slow faults,
//! across mitigation levels.
//!
//! Runs `{slow_link, flaky_link, slow_server} × {baseline,
//! scored-routing, +hedging}` plus one clean reference cell and
//! reports, per cell, the measurement-phase read p99, the safety
//! counters, the hedge/budget ledgers, and whether the recorded
//! history passes the linearizability checker. The headline
//! acceptance, asserted on every run:
//!
//! * **unmitigated hurts** — each fail-slow scenario inflates the
//!   baseline cell's read p99 past [`P99_BOUND`]× the clean p99;
//! * **mitigated is bounded** — scored routing (and hedging on top)
//!   keep the read p99 within [`P99_BOUND`]× clean under the same
//!   fault;
//! * **mitigation is safe** — zero lost acked writes, zero duplicate
//!   applies (`applied ≤ issued`, standby refusals never execute), a
//!   linearizable history in every cell;
//! * **storms stay bounded** — with the retry budget on, tokens
//!   consumed stay within [`AMPLIFICATION_BOUND`]× completed calls.
//!
//! Fully deterministic per seed: running twice with the same seed
//! prints the same bytes.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin grayfail [seed]
//! ```

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_chaos::{spawn_grayfail_kv, FaultPlan, GrayChaosConfig};
use rfp_core::GrayConfig;
use rfp_simnet::{SimSpan, SimTime, Simulation};
use rfp_workload::check_history;

/// Faults strike after this much healthy warm-up (baselines freeze
/// well before: the scorer needs ~16 calls in a rolling window).
const FAULT_AT: SimTime = SimTime::from_nanos(1_000_000);
/// Fault windows outlive the run: a gray fault does not heal itself.
const FAULT_SPAN: SimSpan = SimSpan::millis(500);
/// Read p99 is measured over GETs started after this instant, leaving
/// the router one detection transient past the fault onset.
const MEASURE_FROM: SimTime = SimTime::from_nanos(3_000_000);
/// Every cell runs at most this long (ops budgets finish earlier).
const WINDOW: SimSpan = SimSpan::millis(400);
/// Mitigated read p99 must stay within this factor of the clean p99;
/// every unmitigated fail-slow cell must exceed it.
const P99_BOUND: f64 = 3.0;
/// Retry-budget tokens consumed per completed call, at most.
const AMPLIFICATION_BOUND: f64 = 2.0;

/// Added one-way wire latency of the slow-link scenario (~20× the
/// healthy propagation delay — a dying cable, not a dead one).
const SLOW_LINK_LAG_NS: u64 = 30_000;
/// Loss rate of the flaky-link scenario: heavy RC retransmission, far
/// under anything that errors a verb (the recovery threshold). The
/// latency inflation it can cause is *capped* by the retransmit-round
/// limit (~8 rounds per verb), which is exactly what makes it the
/// hardest scenario for the scorer.
const FLAKY_LOSS: f64 = 0.9;
/// CPU multiplier of the slow-server scenario.
const SLOW_SERVER_FACTOR: f64 = 30.0;

struct CellResult {
    p99_ns: u64,
    reads: usize,
}

fn plan_for(seed: u64, scenario: &str) -> Option<FaultPlan> {
    match scenario {
        "clean" => None,
        "slow_link" => {
            Some(FaultPlan::new(seed).slow_link(FAULT_AT, FAULT_SPAN, 0, SLOW_LINK_LAG_NS))
        }
        "flaky_link" => Some(FaultPlan::new(seed).flaky_link(FAULT_AT, FAULT_SPAN, 0, FLAKY_LOSS)),
        "slow_server" => {
            Some(FaultPlan::new(seed).slow_server(FAULT_AT, FAULT_SPAN, 0, SLOW_SERVER_FACTOR))
        }
        other => panic!("unknown scenario {other}"),
    }
}

fn gray_for(mode: &str) -> (GrayConfig, bool) {
    match mode {
        "baseline" => (GrayConfig::default(), false),
        "routing" => (GrayConfig::routing_only(), true),
        "hedged" => (GrayConfig::all_on(), true),
        other => panic!("unknown mode {other}"),
    }
}

fn run_cell(seed: u64, scenario: &str, mode: &str) -> CellResult {
    let (gray, hedged_reads) = gray_for(mode);
    let mut sim = Simulation::new(seed);
    let cfg = GrayChaosConfig {
        clients: 4,
        // 1200 ops over 16 keys keeps every key under the
        // linearizability checker's 128-op search cap.
        keys_per_client: 16,
        ops_per_client: 1_200,
        hedged_reads,
        failover: rfp_core::FailoverConfig {
            gray,
            ..GrayChaosConfig::default().failover
        },
        seed,
        ..GrayChaosConfig::default()
    };
    let plan = plan_for(seed, scenario);
    let rig = spawn_grayfail_kv(&mut sim, &cfg, plan.as_ref());
    sim.run_for(WINDOW);

    let st = &rig.state;
    assert_eq!(
        st.done_clients.get(),
        cfg.clients,
        "{scenario}/{mode}: a client never finished"
    );
    let history = st.history();
    let linearizable = check_history(&history).is_ok();
    let reads = st.read_lats_since(MEASURE_FROM);
    let p99_ns = st
        .read_p99_since(MEASURE_FROM)
        .expect("measurement phase has reads");
    let (hedges, hedge_wins, hedge_wasted) = rig.total_hedges();
    let (budget_spent, budget_denied) = rig.budget_totals();
    let demotions = rig
        .registry
        .names()
        .iter()
        .filter(|n| n.as_str() == "routing.demote")
        .map(|n| rig.registry.counter(n).get())
        .sum::<u64>();

    println!(
        "{scenario},{mode},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        st.completed.get(),
        st.acked_puts.get(),
        st.failed_calls.get(),
        st.lost_acked.get(),
        st.stale_reads.get(),
        reads.len(),
        p99_ns / 1_000,
        demotions,
        hedges,
        hedge_wins,
        hedge_wasted,
        budget_spent,
        budget_denied,
        linearizable as u32,
    );

    // Safety: no acked write lost, no read runs backwards, history
    // linearizes, and hedging never double-applies a mutation — the
    // primary applied at most one execution per issued PUT and every
    // standby-refused mutation was provably unexecuted.
    assert_eq!(
        st.lost_acked.get(),
        0,
        "{scenario}/{mode}: an acked write was lost"
    );
    assert_eq!(
        st.stale_reads.get(),
        0,
        "{scenario}/{mode}: a read ran backwards"
    );
    assert!(
        linearizable,
        "{scenario}/{mode}: history failed the linearizability checker"
    );
    assert!(
        rig.primary_role.applied_mutations.get() <= st.issued_puts.get(),
        "{scenario}/{mode}: duplicate-applied mutation ({} applied, {} issued)",
        rig.primary_role.applied_mutations.get(),
        st.issued_puts.get()
    );
    assert!(
        rig.primary_role.applied_mutations.get() >= st.acked_puts.get(),
        "{scenario}/{mode}: acked more than applied"
    );
    // Mitigation visibility: a faulted mitigated cell must demote the
    // gray replica through a flight-recorded `routing.demote` chain
    // (carrying the triggering health window), and a hedged cell's
    // hedge legs must leave `recovery.hedge.*` chains — the evidence
    // the doctor's dump bundle surfaces.
    if scenario != "clean" && mode != "baseline" {
        assert!(
            demotions >= 1 && rig.recorder.kind_count("routing.demote") >= 1,
            "{scenario}/{mode}: no recorded demotion chain"
        );
    }
    if hedges > 0 {
        assert!(
            rig.recorder.kind_count("recovery.hedge.issued") >= 1,
            "{scenario}/{mode}: hedges issued but no recorded hedge chain"
        );
    }
    // Retry-storm bound: tokens consumed (retries + hedges + switches
    // that stayed spent) per completed call.
    if mode != "baseline" {
        let amplification = budget_spent as f64 / st.completed.get().max(1) as f64;
        assert!(
            amplification <= AMPLIFICATION_BOUND,
            "{scenario}/{mode}: retry amplification {amplification:.2} exceeds {AMPLIFICATION_BOUND}"
        );
    }

    let bench = bench_registry();
    let row = format!("bench.grayfail.{scenario}_{mode}");
    for (metric, value) in [
        ("completed", st.completed.get()),
        ("lost_acked", st.lost_acked.get()),
        ("read_p99_us", p99_ns / 1_000),
        ("demotions", demotions),
        ("hedges", hedges),
        ("hedge_wins", hedge_wins),
        ("budget_spent", budget_spent),
        ("linearizable", linearizable as u64),
    ] {
        bench.counter(&format!("{row}.{metric}")).add(value);
    }

    CellResult {
        p99_ns,
        reads: reads.len(),
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# gray-failure sweep: fail-slow faults x mitigation levels");
    println!(
        "# seed={seed} fault_at={}us measure_from={}us p99_bound={P99_BOUND}x",
        FAULT_AT.as_nanos() / 1_000,
        MEASURE_FROM.as_nanos() / 1_000,
    );
    println!(
        "scenario,mode,completed,acked_puts,failed_calls,lost_acked,stale_reads,\
         meas_reads,read_p99_us,demotions,hedges,hedge_wins,hedge_wasted,\
         budget_spent,budget_denied,linearizable"
    );

    let clean = run_cell(seed, "clean", "baseline");
    assert!(
        clean.reads >= 100,
        "clean cell too thin: {} measured reads",
        clean.reads
    );
    let bound_ns = (clean.p99_ns as f64 * P99_BOUND) as u64;

    for scenario in ["slow_link", "flaky_link", "slow_server"] {
        let base = run_cell(seed, scenario, "baseline");
        assert!(
            base.p99_ns > bound_ns,
            "{scenario}/baseline: fault too mild to matter \
             (p99 {}us, clean {}us)",
            base.p99_ns / 1_000,
            clean.p99_ns / 1_000
        );
        for mode in ["routing", "hedged"] {
            let cell = run_cell(seed, scenario, mode);
            assert!(
                cell.p99_ns <= bound_ns,
                "{scenario}/{mode}: mitigated read p99 {}us exceeds {P99_BOUND}x clean ({}us)",
                cell.p99_ns / 1_000,
                clean.p99_ns / 1_000
            );
        }
    }

    let path = emit_bench_json("grayfail").expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}
