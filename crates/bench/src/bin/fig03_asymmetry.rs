//! Figure 3: in-bound vs out-bound IOPS by server thread count.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig03(&mut out).expect("write to stdout");
}
