//! Figure 3: in-bound vs out-bound IOPS by server thread count.

fn main() {
    rfp_bench::run_experiment("fig03_asymmetry");
}
