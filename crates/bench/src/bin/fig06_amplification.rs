//! Figure 6: server-bypass throughput vs RDMA rounds per request.

fn main() {
    rfp_bench::run_experiment("fig06_amplification");
}
