//! Figure 6: server-bypass throughput vs RDMA rounds per request.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig06(&mut out).expect("write to stdout");
}
