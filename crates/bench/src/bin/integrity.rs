//! Integrity sweep: corrupt-fetch detection and the checksum tax.
//!
//! A single-connection RFP echo rig runs against a server machine whose
//! memory is poisoned with torn-DMA and bit-flip windows at swept
//! probabilities. Every call carries a seeded pseudo-random payload the
//! client knows in advance, so corruption surfacing to the caller is
//! directly observable as an echo mismatch — the bench asserts there are
//! **zero** such mismatches at every fault rate while counting how many
//! corrupt images the integrity layer discarded and refetched on the
//! way.
//!
//! The zero-fault points with integrity on and off bracket the cost of
//! the protection itself (extended header + trailer bytes and the extra
//! verification work on every fetch): the `crc cost` line at the bottom
//! is their goodput delta.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin integrity [seed]
//! ```

use std::cell::Cell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_core::{connect, serve_loop, IntegrityConfig, RfpConfig, RfpTelemetry};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{MetricsRegistry, SimSpan, Simulation, SpanRecorder};

/// Per-READ fault probabilities swept (applied to torn-DMA and bit-flip
/// both). Zero is the baseline point shared with the integrity-off run.
const RATES: [f64; 4] = [0.0, 0.005, 0.02, 0.05];
/// Calls per swept point.
const CALLS: usize = 2_000;
/// Payload sizes drawn per call: spans one- and two-segment fetches at
/// the default `F = 256`.
const MAX_PAYLOAD: usize = 2_000;

struct Row {
    rate: f64,
    integrity: bool,
    mops: f64,
    torn: u64,
    crc_fail: u64,
    retries: u64,
    mismatches: u64,
}

/// Runs `CALLS` echo calls against a server with both fault knobs at
/// `rate`, returning the measured row. Panics (deliberately) if the rig
/// wedges before finishing.
fn run_point(seed: u64, rate: f64, integrity: bool) -> Row {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let registry = MetricsRegistry::new();
    let cfg = RfpConfig {
        integrity: IntegrityConfig {
            enabled: integrity,
            ..IntegrityConfig::default()
        },
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: SpanRecorder::new(16),
            prefix: "rfp.client.0".to_string(),
            track: 0,
        }),
        ..RfpConfig::default()
    };
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    sm.faults().set_torn_dma(rate);
    sm.faults().set_bitflip(rate);

    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        SimSpan::nanos(100),
    ));

    let ct = cm.thread("client");
    let done = Rc::new(Cell::new(0u64));
    let mismatches = Rc::new(Cell::new(0u64));
    let retries = Rc::new(Cell::new(0u64));
    let finished_ns = Rc::new(Cell::new(0u64));
    let (d, m, r, f) = (
        Rc::clone(&done),
        Rc::clone(&mismatches),
        Rc::clone(&retries),
        Rc::clone(&finished_ns),
    );
    sim.spawn(async move {
        let mut rng = StdRng::seed_from_u64(rfp_simnet::derive_seed(seed, 0x1D7E_6217));
        for _ in 0..CALLS {
            let len = rng.gen_range(0..MAX_PAYLOAD);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let out = client.call(&ct, &payload).await;
            if out.data != payload {
                m.set(m.get() + 1);
            }
            r.set(r.get() + out.info.integrity_retries as u64);
            d.set(d.get() + 1);
        }
        f.set(ct.now().as_nanos());
    });

    // Generous ceiling: even the worst fault rate finishes far sooner.
    sim.run_for(SimSpan::millis(200));
    assert_eq!(done.get(), CALLS as u64, "rig wedged at rate {rate}");

    // The fetch.* counters are created lazily on the first corrupt
    // fetch; reading through `counter()` would create them, so check
    // existence first.
    let lazy = |name: &str| {
        if registry.names().iter().any(|n| n == name) {
            registry.counter(name).get()
        } else {
            0
        }
    };
    Row {
        rate,
        integrity,
        mops: CALLS as f64 / (finished_ns.get() as f64 / 1e9) / 1e6,
        torn: lazy("fetch.torn"),
        crc_fail: lazy("fetch.crc_fail"),
        retries: retries.get(),
        mismatches: mismatches.get(),
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# integrity sweep: echo fidelity and goodput under torn-DMA + bit-flip faults");
    println!("# seed={seed} calls={CALLS} max_payload={MAX_PAYLOAD}");
    println!("rate,integrity,mops,torn,crc_fail,retries,mismatches");

    let bench = bench_registry();
    let mut rows = Vec::new();
    // The integrity-off leg runs only fault-free: without verification
    // a poisoned READ would surface corrupt bytes by design, which is
    // exactly the failure mode the layer exists to close.
    let mut points: Vec<(f64, bool)> = vec![(0.0, false)];
    points.extend(RATES.iter().map(|&r| (r, true)));
    for (rate, integrity) in points {
        let row = run_point(seed, rate, integrity);
        let mode = if row.integrity { "on" } else { "off" };
        println!(
            "{:.3},{mode},{:.4},{},{},{},{}",
            row.rate, row.mops, row.torn, row.crc_fail, row.retries, row.mismatches
        );
        for (metric, value) in [
            ("kops", (row.mops * 1e3) as u64),
            ("torn", row.torn),
            ("crc_fail", row.crc_fail),
            ("retries", row.retries),
        ] {
            bench
                .counter(&format!("bench.integrity.p{:.3}.{mode}.{metric}", row.rate))
                .add(value);
        }
        rows.push(row);
    }

    // Headline: no corrupt payload ever reaches a caller, at any rate.
    for row in &rows {
        assert_eq!(
            row.mismatches, 0,
            "corrupt payload surfaced at rate {} (integrity {})",
            row.rate, row.integrity
        );
    }
    // The knobs actually fire: every non-zero rate discarded fetches...
    for row in rows.iter().filter(|r| r.rate > 0.0) {
        assert!(
            row.retries > 0,
            "no corrupt fetch was ever manufactured at rate {}",
            row.rate
        );
    }
    // ...and clean runs discard none (the layer is silent when the
    // fabric is honest).
    for row in rows.iter().filter(|r| r.rate == 0.0) {
        assert_eq!(row.retries, 0, "spurious integrity retry on a clean run");
    }

    let off0 = rows[0].mops;
    let on0 = rows
        .iter()
        .find(|r| r.integrity && r.rate == 0.0)
        .expect("swept point")
        .mops;
    println!(
        "# crc cost: integrity on {:.4} Mops vs off {:.4} Mops ({:+.2}% goodput)",
        on0,
        off0,
        (on0 - off0) / off0 * 100.0
    );

    let path = emit_bench_json("integrity").expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}
