//! Chaos ablation: the Jakiro-style rig under each fault class.
//!
//! Runs one scenario per fault class (plus a fault-free baseline and a
//! seeded mixed plan) on the recovery-enabled chaos rig and reports, per
//! scenario, throughput, recovery effort, recovery time, and the two
//! safety invariants (lost acked writes, stale reads). Fully
//! deterministic per seed: running twice with the same seed prints the
//! same bytes.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin chaos [seed]
//! ```

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_chaos::{spawn_chaos_kv, ChaosConfig, FaultPlan};
use rfp_core::OverloadConfig;
use rfp_simnet::{SimSpan, SimTime, Simulation};

/// Faults strike after this much warm-up…
const FAULT_AT: SimTime = SimTime::from_nanos(2_000_000);
/// …and every scenario runs this long in total.
const WINDOW: SimSpan = SimSpan::millis(8);
/// Duration of windowed faults (bursts, degradation, stragglers).
const FAULT_SPAN: SimSpan = SimSpan::millis(1);
/// Server downtime of crash scenarios.
const DOWNTIME: SimSpan = SimSpan::micros(300);

/// One row of the ablation: a fault plan, optionally run with overload
/// control armed.
struct Scenario {
    name: &'static str,
    plan: Option<FaultPlan>,
    /// Arm credit-based admission and deadline-aware shedding. The
    /// deadline is generous (well above healthy latency), so only
    /// genuine pile-ups — the straggler window — shed.
    overload: bool,
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    let sc = |name, plan| Scenario {
        name,
        plan,
        overload: false,
    };
    vec![
        sc("baseline", None),
        sc(
            "loss_burst",
            Some(FaultPlan::new(seed).loss_burst(FAULT_AT, FAULT_SPAN, 0, 0.3)),
        ),
        sc(
            "link_degrade",
            Some(FaultPlan::new(seed).link_degrade(FAULT_AT, FAULT_SPAN, 8.0)),
        ),
        sc(
            "straggler",
            Some(FaultPlan::new(seed).straggler(FAULT_AT, FAULT_SPAN, 0, 4.0)),
        ),
        sc("qp_error", Some(FaultPlan::new(seed).qp_error(FAULT_AT, 0))),
        sc(
            "warm_restart",
            Some(FaultPlan::new(seed).crash(FAULT_AT, DOWNTIME, 0, true)),
        ),
        sc(
            "cold_restart",
            Some(FaultPlan::new(seed).crash(FAULT_AT, DOWNTIME, 0, false)),
        ),
        sc(
            "mixed",
            Some(FaultPlan::random(
                seed,
                6,
                FAULT_AT,
                FAULT_AT + SimSpan::millis(4),
                4,
            )),
        ),
        // Overload control composed with a severe straggler core:
        // requests stuck behind the slow thread miss their deadline and
        // are shed instead of queueing; both safety invariants must
        // still hold, because a shed request was never executed.
        Scenario {
            name: "overload_straggler",
            plan: Some(FaultPlan::new(seed).straggler(FAULT_AT, FAULT_SPAN, 0, 64.0)),
            overload: true,
        },
    ]
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# chaos ablation: Jakiro-style rig with client-side recovery");
    println!(
        "# seed={seed} window={}ms fault_at=2ms",
        WINDOW.as_nanos() / 1_000_000
    );
    println!(
        "scenario,completed,acked_puts,failed_calls,lost_acked,stale_reads,\
         recovery_us_max,resubmits,reconnects,deadlines,verb_errors,faults_fired,\
         rejected,busy_rejects,sheds"
    );

    let bench = bench_registry();
    for Scenario {
        name,
        plan,
        overload,
    } in scenarios(seed)
    {
        let mut sim = Simulation::new(seed);
        let mut cfg = ChaosConfig {
            seed,
            ..ChaosConfig::default()
        };
        if overload {
            cfg.overload = OverloadConfig {
                enabled: true,
                deadline: SimSpan::micros(25),
                ..OverloadConfig::default()
            };
        }
        let rig = spawn_chaos_kv(&mut sim, &cfg, plan.as_ref());
        sim.run_for(WINDOW);

        let snap = rig.registry.snapshot();
        let scalar = |n: &str| snap.scalar(n).unwrap_or(0.0) as u64;
        let faults_fired = [
            "fault.loss_bursts",
            "fault.link_degrades",
            "fault.stragglers",
            "fault.qp_errors",
            "fault.crashes_warm",
            "fault.crashes_cold",
        ]
        .iter()
        .map(|n| scalar(n))
        .sum::<u64>();
        let recovery_us = rig
            .max_recovery_time()
            .map(|s| s.as_nanos() / 1_000)
            .unwrap_or(0);
        let st = &rig.state;
        // Server-side admission verdicts (lazy counters: zero — and
        // absent — when overload is off).
        let busy_rejects = scalar("overload.busy_rejections");
        let sheds = scalar("overload.sheds");
        println!(
            "{name},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            st.completed.get(),
            st.acked_puts.get(),
            st.failed_calls.get(),
            st.lost_acked.get(),
            st.stale_reads.get(),
            recovery_us,
            scalar("recovery.resubmits"),
            scalar("recovery.reconnects"),
            scalar("recovery.deadlines"),
            scalar("recovery.verb_errors"),
            faults_fired,
            st.rejected_calls.get(),
            busy_rejects,
            sheds,
        );

        for (metric, value) in [
            ("completed", st.completed.get()),
            ("lost_acked", st.lost_acked.get()),
            ("stale_reads", st.stale_reads.get()),
            ("recovery_us_max", recovery_us),
            ("rejected", st.rejected_calls.get()),
            ("sheds", sheds),
        ] {
            bench
                .counter(&format!("bench.chaos.{name}.{metric}"))
                .add(value);
        }

        // The headline safety claims, checked on every run.
        assert_eq!(
            st.stale_reads.get(),
            0,
            "{name}: stale pre-wipe data surfaced"
        );
        if name != "mixed" {
            // The mixed plan may crash cold mid-call in ways that lose
            // unacked writes (fine) but single-fault scenarios must keep
            // the strict invariant.
            assert_eq!(st.lost_acked.get(), 0, "{name}: an acked write was lost");
        }
    }

    let path = emit_bench_json("chaos").expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}
