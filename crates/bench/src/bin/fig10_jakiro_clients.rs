//! Figure 10: Jakiro throughput vs client thread count.

fn main() {
    rfp_bench::run_experiment("fig10_jakiro_clients");
}
