//! Figure 10: Jakiro throughput vs client thread count.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig10(&mut out).expect("write to stdout");
}
