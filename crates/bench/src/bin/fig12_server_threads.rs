//! Figure 12: the three systems vs server thread count.

fn main() {
    rfp_bench::run_experiment("fig12_server_threads");
}
