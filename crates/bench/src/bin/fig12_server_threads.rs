//! Figure 12: the three systems vs server thread count.

fn main() {
    let mut out = std::io::stdout().lock();
    rfp_bench::figures::fig12(&mut out).expect("write to stdout");
}
