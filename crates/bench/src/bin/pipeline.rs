//! Pipelined-window sweep: single-client throughput vs ring window `W`.
//!
//! One client, one connection, one server thread. The client drives
//! batches of echo calls through [`RfpClient::call_pipelined`], which
//! keeps up to `W` calls outstanding in the connection's slot ring and
//! polls all of their fetch READs with **one doorbell ring per round**
//! (`post_read_batch`). The sweep runs `W ∈ {1, 2, 4, 8, 16}` across
//! 16–512 B payloads and reports:
//!
//! - throughput (Mops) — the pipelining win: request WRITEs and fetch
//!   READs of `W` calls share their wire round trips;
//! - fetch READs per doorbell ring — how full the batches actually are;
//! - charged client issue cost per fetch READ — `issue_cpu` is paid per
//!   *doorbell*, not per READ, so it drops toward `issue_cpu / W`.
//!
//! Also pins the serve loop's adaptive idle backoff
//! ([`IdlePolicy::adaptive`]): at low load it cuts the server thread's
//! poll burn by an order of magnitude, at saturation it costs nothing.
//!
//! `W = 1` must reproduce the sequential client exactly; the sweep's
//! first row doubles as that regression anchor (every READ pays its own
//! doorbell: issue per READ = the profile's full `issue_cpu`).
//!
//! ```text
//! cargo run --release -p rfp-bench --bin pipeline [seed]
//! ```

use std::cell::Cell;
use std::rc::Rc;

use rfp_bench::telemetry::{bench_registry, emit_bench_json};
use rfp_core::{connect, serve_loop, IdlePolicy, RfpClient, RfpConfig, RESP_HDR};
use rfp_rnic::{Cluster, ClusterProfile, ThreadCtx};
use rfp_simnet::{SimSpan, Simulation};

/// Ring windows swept (powers of two; 1 = the sequential layout).
const WINDOWS: [usize; 5] = [1, 2, 4, 8, 16];
/// Request/response payload sizes swept (bytes).
const PAYLOADS: [usize; 4] = [16, 32, 128, 512];
/// Calls handed to each `call_pipelined` invocation: large enough that
/// the ring stays full for many refills per batch.
const BATCH: usize = 64;
/// Warm-up before, and length of, each measurement window.
const WARMUP: SimSpan = SimSpan::millis(1);
const WINDOW: SimSpan = SimSpan::millis(10);
/// Client-side NIC issue cost from the paper testbed profile (ns); the
/// per-READ charge at `W = 1` and the numerator of the doorbell math.
const ISSUE_CPU_NS: f64 = 200.0;

struct Row {
    window: usize,
    payload: usize,
    mops: f64,
    reads_per_doorbell: f64,
    issue_per_read_ns: f64,
}

struct Rig {
    sim: Simulation,
    client: Rc<RfpClient>,
    client_thread: Rc<ThreadCtx>,
    server_thread: Rc<ThreadCtx>,
}

/// One client machine, one server machine, one connection with ring
/// window `w`, one echoing server thread paced by `idle`.
fn rig(seed: u64, w: usize, payload: usize, idle: IdlePolicy) -> Rig {
    let mut sim = Simulation::new(seed);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let cfg = RfpConfig {
        window: w,
        // Whole response (header + echoed payload) in one READ: the
        // sweep measures pipelining, not extra-read amplification.
        fetch_size: RESP_HDR + payload,
        enable_mode_switch: false,
        ..RfpConfig::default()
    };
    let (client, conn) = connect(&cm, &sm, cluster.qp(0, 1), cluster.qp(1, 0), cfg);
    let server_thread = sm.thread("server");
    sim.spawn(serve_loop(
        Rc::clone(&server_thread),
        vec![Rc::new(conn)],
        |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
        idle,
    ));
    Rig {
        sim,
        client: Rc::new(client),
        client_thread: cm.thread("client"),
        server_thread,
    }
}

/// Closed-loop pipelined echo sweep point; returns `(row, mops)` with
/// the row's doorbell math filled in from the client's NIC-side stats.
fn run_point(seed: u64, w: usize, payload: usize, idle: IdlePolicy) -> Row {
    let r = rig(seed, w, payload, idle);
    let mut sim = r.sim;
    let (client, ct) = (Rc::clone(&r.client), Rc::clone(&r.client_thread));
    sim.spawn(async move {
        let reqs: Vec<Vec<u8>> = (0..BATCH)
            .map(|i| {
                let mut v = vec![0u8; payload];
                v[0] = i as u8;
                v
            })
            .collect();
        loop {
            let outs = client.call_pipelined(&ct, &reqs).await;
            for (req, out) in reqs.iter().zip(&outs) {
                assert_eq!(&out.data, req, "echo mismatch");
            }
        }
    });
    sim.run_for(WARMUP);
    r.client.stats().reset();
    let t0 = sim.now();
    sim.run_for(WINDOW);
    let secs = (sim.now() - t0).as_secs_f64();

    let st = r.client.stats();
    let (doorbells, batched, single) = (st.doorbells(), st.doorbell_reads(), st.single_reads());
    let reads = batched + single;
    Row {
        window: w,
        payload,
        mops: st.calls() as f64 / secs / 1e6,
        reads_per_doorbell: if doorbells == 0 {
            1.0
        } else {
            batched as f64 / doorbells as f64
        },
        issue_per_read_ns: ISSUE_CPU_NS * (doorbells + single) as f64 / reads.max(1) as f64,
    }
}

/// Server-thread poll burn at low load (one call every 100 µs): the
/// CPU-utilisation cost of scanning an almost-always-empty ring, with
/// and without adaptive idle backoff.
fn idle_burn(seed: u64, idle: IdlePolicy) -> f64 {
    let r = rig(seed, 1, 32, idle);
    let mut sim = r.sim;
    let (client, ct) = (Rc::clone(&r.client), Rc::clone(&r.client_thread));
    let served = Rc::new(Cell::new(0u64));
    let served_in = Rc::clone(&served);
    sim.spawn(async move {
        loop {
            ct.idle_wait(ct.handle().sleep(SimSpan::micros(100))).await;
            let out = client.call(&ct, b"ping").await;
            assert_eq!(out.data, b"ping");
            served_in.set(served_in.get() + 1);
        }
    });
    sim.run_for(WARMUP);
    r.server_thread.reset_utilization();
    sim.run_for(WINDOW);
    assert!(served.get() > 0, "low-load client made no calls");
    r.server_thread.utilization()
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse::<u64>().expect("seed must be a u64"))
        .unwrap_or(42);

    println!("# pipeline sweep: single-client throughput vs ring window W");
    println!(
        "# seed={seed} batch={BATCH} warmup={}ms window={}ms issue_cpu={}ns",
        WARMUP.as_nanos() / 1_000_000,
        WINDOW.as_nanos() / 1_000_000,
        ISSUE_CPU_NS,
    );
    println!("window,payload,mops,reads_per_doorbell,issue_per_read_ns");

    let bench = bench_registry();
    let mut rows = Vec::new();
    for &payload in &PAYLOADS {
        for &w in &WINDOWS {
            let row = run_point(seed, w, payload, IdlePolicy::fixed(SimSpan::nanos(100)));
            println!(
                "{},{},{:.4},{:.2},{:.2}",
                row.window, row.payload, row.mops, row.reads_per_doorbell, row.issue_per_read_ns
            );
            for (metric, value) in [
                ("kops", (row.mops * 1e3) as u64),
                (
                    "reads_per_doorbell_milli",
                    (row.reads_per_doorbell * 1e3) as u64,
                ),
                ("issue_per_read_ps", (row.issue_per_read_ns * 1e3) as u64),
            ] {
                bench
                    .counter(&format!("bench.pipeline.w{w}.p{payload}.{metric}"))
                    .add(value);
            }
            rows.push(row);
        }
    }

    let at = |w: usize, payload: usize| {
        rows.iter()
            .find(|r| r.window == w && r.payload == payload)
            .expect("swept point")
    };

    // Headline claim: pipelining at least doubles single-client 32 B
    // throughput once the window covers the wire round trip (W ≥ 8).
    let base = at(1, 32).mops;
    for w in [8, 16] {
        let mops = at(w, 32).mops;
        assert!(
            mops >= 2.0 * base,
            "W={w} failed the 2x throughput bar at 32B: {mops:.4} vs {base:.4} Mops"
        );
    }

    // The W = 1 anchor is the sequential client: every fetch READ pays
    // its own doorbell, i.e. the profile's full issue_cpu.
    for &payload in &PAYLOADS {
        let anchor = at(1, payload);
        assert_eq!(anchor.issue_per_read_ns, ISSUE_CPU_NS);
        assert_eq!(anchor.reads_per_doorbell, 1.0);
        // Doorbell batching: charged issue cost per READ falls
        // monotonically as the window widens...
        for pair in WINDOWS.windows(2) {
            let (lo, hi) = (at(pair[0], payload), at(pair[1], payload));
            assert!(
                hi.issue_per_read_ns <= lo.issue_per_read_ns,
                "issue/READ rose from W={} ({:.2}ns) to W={} ({:.2}ns) at {payload}B",
                lo.window,
                lo.issue_per_read_ns,
                hi.window,
                hi.issue_per_read_ns
            );
        }
        // ...and by W = 16 most READs ride a shared ring.
        let wide = at(16, payload);
        assert!(
            wide.issue_per_read_ns <= 0.25 * ISSUE_CPU_NS,
            "W=16 issue/READ at {payload}B is {:.2}ns, expected <= {:.2}ns",
            wide.issue_per_read_ns,
            0.25 * ISSUE_CPU_NS
        );
    }

    // Adaptive idle backoff: near-free at saturation, an order of
    // magnitude cheaper at low load.
    let adaptive = IdlePolicy::adaptive(SimSpan::nanos(100), SimSpan::micros(10));
    let sat_fixed = at(8, 32).mops;
    let sat_adaptive = run_point(seed, 8, 32, adaptive).mops;
    assert!(
        sat_adaptive >= 0.90 * sat_fixed,
        "adaptive backoff hurt saturated throughput: {sat_adaptive:.4} vs {sat_fixed:.4} Mops"
    );
    let burn_fixed = idle_burn(seed, IdlePolicy::fixed(SimSpan::nanos(100)));
    let burn_adaptive = idle_burn(seed, adaptive);
    assert!(
        burn_fixed > 0.5,
        "fixed-spin serve loop should busy-poll at low load: utilization {burn_fixed:.3}"
    );
    assert!(
        burn_adaptive < 0.2 * burn_fixed,
        "adaptive backoff failed to cut poll burn: {burn_adaptive:.3} vs fixed {burn_fixed:.3}"
    );
    println!(
        "# idle backoff: low-load server utilization fixed={burn_fixed:.3} \
         adaptive={burn_adaptive:.3}; saturated mops fixed={sat_fixed:.4} \
         adaptive={sat_adaptive:.4}"
    );
    for (metric, value) in [
        ("idle_util_fixed_milli", (burn_fixed * 1e3) as u64),
        ("idle_util_adaptive_milli", (burn_adaptive * 1e3) as u64),
        ("sat_adaptive_kops", (sat_adaptive * 1e3) as u64),
    ] {
        bench
            .counter(&format!("bench.pipeline.{metric}"))
            .add(value);
    }

    let path = emit_bench_json("pipeline").expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}
