//! One function per paper figure/table. Each writes CSV rows
//! `figure,series,x,y` (comments prefixed `#`) mirroring the axes the
//! paper plots; `EXPERIMENTS.md` records the comparison against the
//! paper's reported values.

use std::io::{self, Write};
use std::rc::Rc;

use rfp_core::{connect, serve_loop, ParamSelector, RfpConfig, WorkloadSample, RESP_HDR};
use rfp_kvstore::{
    spawn_jakiro, spawn_memcached, spawn_pilaf, spawn_server_reply_kv, SystemConfig,
};
use rfp_paradigms::sr_connect;
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{SimSpan, Simulation};
use rfp_workload::{KeyDist, OpMix, ValueSize, WorkloadSpec};

use crate::kvrun::{run_kv, KvRun};
use crate::micro;
use crate::{DEFAULT_WARMUP_MS, DEFAULT_WINDOW_MS};

fn window() -> SimSpan {
    SimSpan::millis(DEFAULT_WINDOW_MS)
}

fn warmup() -> SimSpan {
    SimSpan::millis(DEFAULT_WARMUP_MS)
}

fn row(
    w: &mut dyn Write,
    fig: &str,
    series: &str,
    x: impl std::fmt::Display,
    y: f64,
) -> io::Result<()> {
    writeln!(w, "{fig},{series},{x},{y:.4}")
}

fn kv_cfg(key_count: u64) -> SystemConfig {
    SystemConfig {
        spec: WorkloadSpec {
            key_count,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    }
}

const KEYS: u64 = 2_000;

/// Figure 3: out-bound IOPS vs number of server threads, with the
/// saturated in-bound rate for comparison (32 B payloads).
pub fn fig03(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# fig03: IOPS (MOPS) of out-bound vs in-bound one-sided ops, 32B"
    )?;
    let inbound = micro::inbound_mops(5, 32, window());
    for threads in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        let out = micro::outbound_mops(threads, 32, window());
        row(w, "fig03", "outbound", threads, out)?;
        row(w, "fig03", "inbound", threads, inbound)?;
    }
    Ok(())
}

/// Figure 4: server in-bound IOPS vs total client threads (7…70).
pub fn fig04(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# fig04: server in-bound IOPS vs client threads, 32B reads"
    )?;
    for per_machine in 1..=10usize {
        let mops = micro::inbound_mops(per_machine, 32, window());
        row(w, "fig04", "inbound", per_machine * 7, mops)?;
    }
    Ok(())
}

/// Figure 5: IOPS of both directions vs payload size.
pub fn fig05(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# fig05: IOPS vs data size; directions converge past ~2KB"
    )?;
    for bytes in [32usize, 64, 128, 256, 512, 1024, 2048, 4096] {
        let inb = micro::inbound_mops(5, bytes, window());
        let out = micro::outbound_mops(4, bytes, window());
        row(w, "fig05", "inbound", bytes, inb)?;
        row(w, "fig05", "outbound", bytes, out)?;
    }
    Ok(())
}

/// Figure 6: server-bypass throughput collapse as the RDMA rounds per
/// request grow (bypass access amplification).
pub fn fig06(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# fig06: 21 bypass clients, k dependent reads per request"
    )?;
    for rounds in 2..=15u32 {
        let (reqs, iops) = micro::amplified_throughput(rounds, window());
        row(w, "fig06", "throughput", rounds, reqs)?;
        row(w, "fig06", "iops", rounds, iops)?;
    }
    Ok(())
}

/// Raw RFP/server-reply echo rig for Figure 9: 35 clients, minimal
/// result size, swept process time.
fn echo_throughput(server_reply: bool, p: SimSpan) -> f64 {
    let mut sim = Simulation::new(104);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 8);
    let server_m = cluster.machine(0);
    let cfg = RfpConfig {
        // F = S minimal: the response header alone carries the 1-byte
        // result (F and S are 1 byte in the paper's Figure 9; the
        // header is our floor).
        fetch_size: RESP_HDR + 1,
        enable_mode_switch: false,
        check_cpu: SimSpan::nanos(30),
        post_cpu: SimSpan::nanos(50),
        req_capacity: 256,
        resp_capacity: 256,
        ..RfpConfig::default()
    };
    // Enough server threads that CPU never binds before the paradigms'
    // own limits do (the paper's Figure 9 isolates the transports).
    let threads = 16usize;
    let mut server_conns: Vec<Vec<_>> = (0..threads).map(|_| Vec::new()).collect();
    let completed = Rc::new(std::cell::Cell::new(0u64));

    let mut idx = 0usize;
    for m in 0..7 {
        let client_m = cluster.machine(1 + m);
        for t in 0..5 {
            let (cl, sc) = if server_reply {
                sr_connect(
                    &client_m,
                    &server_m,
                    cluster.qp(1 + m, 0),
                    cluster.qp(0, 1 + m),
                    cfg.clone(),
                )
            } else {
                connect(
                    &client_m,
                    &server_m,
                    cluster.qp(1 + m, 0),
                    cluster.qp(0, 1 + m),
                    cfg.clone(),
                )
            };
            server_conns[idx % threads].push(Rc::new(sc));
            idx += 1;
            let thread = client_m.thread(format!("c{m}.{t}"));
            let done = Rc::clone(&completed);
            sim.spawn(async move {
                loop {
                    cl.call(&thread, &[7u8]).await;
                    done.set(done.get() + 1);
                }
            });
        }
    }
    for (s, conns) in server_conns.into_iter().enumerate() {
        let thread = server_m.thread(format!("s{s}"));
        sim.spawn(serve_loop(
            thread,
            conns,
            move |_req: &[u8]| (vec![1u8], p),
            SimSpan::nanos(100),
        ));
    }

    sim.run_for(warmup());
    completed.set(0);
    let t0 = sim.now();
    sim.run_for(window());
    completed.get() as f64 / (sim.now() - t0).as_secs_f64() / 1e6
}

/// Figure 9: repeated remote fetching vs server-reply across server
/// process time `P` (the crossover that defines `N`).
pub fn fig09(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# fig09: raw paradigms, F=S minimal, vs process time (us)"
    )?;
    for p_us in 1..=15u64 {
        let p = SimSpan::micros(p_us);
        row(
            w,
            "fig09",
            "remote_fetching",
            p_us,
            echo_throughput(false, p),
        )?;
        row(w, "fig09", "server_reply", p_us, echo_throughput(true, p))?;
    }
    Ok(())
}

/// Figure 10: Jakiro throughput vs number of client threads (7…70),
/// 6 server threads, uniform 95% GET, 32 B values. Also prints the
/// §4.3 round-trip accounting.
pub fn fig10(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# fig10: Jakiro vs client threads; plus inbound ops/request"
    )?;
    for per_machine in 1..=10usize {
        let cfg = SystemConfig {
            clients_per_machine: per_machine,
            ..kv_cfg(KEYS)
        };
        let run = run_kv(spawn_jakiro, &cfg, warmup(), window());
        row(w, "fig10", "jakiro", per_machine * 7, run.mops)?;
        row(
            w,
            "fig10",
            "inbound_per_req",
            per_machine * 7,
            run.inbound_per_req,
        )?;
    }
    Ok(())
}

/// Figure 11: Jakiro vs the Pilaf-style store, uniform 50% GET,
/// 20 Gbps NICs, value sizes 32…256 B.
pub fn fig11(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig11: Jakiro vs Pilaf, 50% GET, 20Gbps profile")?;
    for size in [32usize, 64, 128, 256] {
        let cfg = SystemConfig {
            profile: ClusterProfile::pilaf_testbed(),
            spec: WorkloadSpec {
                key_count: KEYS,
                mix: OpMix::BALANCED,
                values: ValueSize::Fixed(size),
                ..WorkloadSpec::paper_default()
            },
            ..SystemConfig::default()
        };
        let jakiro = run_kv(spawn_jakiro, &cfg, warmup(), window());
        let pilaf = run_kv(spawn_pilaf, &cfg, warmup(), window());
        row(w, "fig11", "jakiro", size, jakiro.mops)?;
        row(w, "fig11", "pilaf", size, pilaf.mops)?;
        row(
            w,
            "fig11",
            "pilaf_ops_per_get",
            size,
            pilaf.bypass_ops_per_get,
        )?;
    }
    Ok(())
}

/// Figure 12: the three RPC systems vs server thread count, 32 B
/// values, uniform 95% GET.
pub fn fig12(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig12: throughput vs server threads")?;
    for threads in [1usize, 2, 4, 6, 8, 10, 12, 14, 16] {
        let cfg = SystemConfig {
            server_threads: threads,
            ..kv_cfg(KEYS)
        };
        row(
            w,
            "fig12",
            "jakiro",
            threads,
            run_kv(spawn_jakiro, &cfg, warmup(), window()).mops,
        )?;
        row(
            w,
            "fig12",
            "server_reply",
            threads,
            run_kv(spawn_server_reply_kv, &cfg, warmup(), window()).mops,
        )?;
        row(
            w,
            "fig12",
            "rdma_memcached",
            threads,
            run_kv(spawn_memcached, &cfg, warmup(), window()).mops,
        )?;
    }
    Ok(())
}

fn peak_cfgs() -> (SystemConfig, SystemConfig, SystemConfig) {
    // Each system at the configuration where it peaks on 32 B uniform
    // 95% GET (paper §4.4.3): Jakiro/ServerReply 6 threads, Memcached 16.
    let base = kv_cfg(KEYS);
    let mcd = SystemConfig {
        server_threads: 16,
        ..base.clone()
    };
    (base.clone(), base, mcd)
}

fn cdf_rows(w: &mut dyn Write, fig: &str, series: &str, run: &KvRun) -> io::Result<()> {
    for (lat_us, p) in run.cdf.iter().step_by(5) {
        row(w, fig, series, format!("{lat_us:.2}"), *p)?;
    }
    row(
        w,
        fig,
        &format!("{series}_mean_us"),
        "-",
        run.mean_latency_us,
    )?;
    Ok(())
}

/// Figure 13: latency CDF of the three systems at peak throughput,
/// uniform read-intensive.
pub fn fig13(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig13: latency CDF (x=us, y=cumulative probability)")?;
    let (jc, sc, mc) = peak_cfgs();
    cdf_rows(
        w,
        "fig13",
        "jakiro",
        &run_kv(spawn_jakiro, &jc, warmup(), window()),
    )?;
    cdf_rows(
        w,
        "fig13",
        "server_reply",
        &run_kv(spawn_server_reply_kv, &sc, warmup(), window()),
    )?;
    cdf_rows(
        w,
        "fig13",
        "rdma_memcached",
        &run_kv(spawn_memcached, &mc, warmup(), window()),
    )?;
    Ok(())
}

fn fig14_cfg(p_us: u64, enable_switch: bool) -> SystemConfig {
    let mut cfg = kv_cfg(KEYS);
    cfg.server_threads = 16;
    cfg.extra_process = SimSpan::micros(p_us);
    cfg.rfp.enable_mode_switch = enable_switch;
    cfg
}

/// Figure 14: Jakiro (with and without the hybrid switch) vs
/// ServerReply across request process time; 16 server / 35 client
/// threads.
pub fn fig14(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig14: throughput vs request process time (us)")?;
    for p_us in 1..=12u64 {
        let jak = run_kv(spawn_jakiro, &fig14_cfg(p_us, true), warmup(), window());
        let jak_ns = run_kv(spawn_jakiro, &fig14_cfg(p_us, false), warmup(), window());
        let sr = run_kv(
            spawn_server_reply_kv,
            &fig14_cfg(p_us, true),
            warmup(),
            window(),
        );
        row(w, "fig14", "jakiro", p_us, jak.mops)?;
        row(w, "fig14", "jakiro_no_switch", p_us, jak_ns.mops)?;
        row(w, "fig14", "server_reply", p_us, sr.mops)?;
    }
    Ok(())
}

/// Figure 15: client CPU utilisation of Jakiro across process time —
/// 100% while remote fetching, dropping once the hybrid mechanism
/// settles in server-reply mode.
pub fn fig15(w: &mut dyn Write) -> io::Result<()> {
    writeln!(
        w,
        "# fig15: Jakiro client CPU utilisation (%) vs process time"
    )?;
    for p_us in 1..=12u64 {
        let run = run_kv(spawn_jakiro, &fig14_cfg(p_us, true), warmup(), window());
        row(w, "fig15", "client_cpu", p_us, run.client_util * 100.0)?;
    }
    Ok(())
}

/// Figure 16: throughput vs GET percentage (uniform keys).
pub fn fig16(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig16: throughput vs GET%, uniform, 32B values")?;
    for (label, mix) in [
        ("95", OpMix::READ_INTENSIVE),
        ("50", OpMix::BALANCED),
        ("5", OpMix::WRITE_INTENSIVE),
    ] {
        let (mut jc, mut sc, mut mc) = peak_cfgs();
        jc.spec.mix = mix;
        sc.spec.mix = mix;
        mc.spec.mix = mix;
        row(
            w,
            "fig16",
            "jakiro",
            label,
            run_kv(spawn_jakiro, &jc, warmup(), window()).mops,
        )?;
        row(
            w,
            "fig16",
            "server_reply",
            label,
            run_kv(spawn_server_reply_kv, &sc, warmup(), window()).mops,
        )?;
        row(
            w,
            "fig16",
            "rdma_memcached",
            label,
            run_kv(spawn_memcached, &mc, warmup(), window()).mops,
        )?;
    }
    Ok(())
}

/// Pre-run parameter selection for a value-size distribution, as §3.2
/// prescribes (returns `(R, F)`).
fn preselect(values: ValueSize, clients: usize) -> (u32, usize) {
    let profile = ClusterProfile::paper_testbed();
    let selector = ParamSelector::new(profile.nic.clone(), profile.link.clone());
    let sizes = values.samples(64, 7).iter().map(|s| s + 5).collect();
    let sample = WorkloadSample {
        result_sizes: sizes,
        process_time: SimSpan::nanos(200),
        request_size: 64,
        client_threads: clients,
    };
    let p = selector.select(&sample);
    (p.r, p.f)
}

/// Figure 17: throughput vs value size 32 B…8 KB (three systems), plus
/// the §4.4.3 mixed-size run; Jakiro's `(R, F)` come from the selection
/// pre-run.
pub fn fig17(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig17: throughput vs value size; params from pre-run")?;
    let (r, f) = preselect(ValueSize::Uniform { min: 32, max: 8192 }, 35);
    writeln!(w, "# selected R={r} F={f} from mixed 32..8192 pre-run")?;
    for size in [32usize, 64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let make = |mix_threads: usize| SystemConfig {
            server_threads: mix_threads,
            spec: WorkloadSpec {
                key_count: KEYS,
                values: ValueSize::Fixed(size),
                ..WorkloadSpec::paper_default()
            },
            rfp: RfpConfig {
                retry_threshold: r,
                fetch_size: f,
                check_cpu: SimSpan::nanos(30),
                post_cpu: SimSpan::nanos(50),
                ..RfpConfig::default()
            },
            ..SystemConfig::default()
        };
        row(
            w,
            "fig17",
            "jakiro",
            size,
            run_kv(spawn_jakiro, &make(6), warmup(), window()).mops,
        )?;
        row(
            w,
            "fig17",
            "server_reply",
            size,
            run_kv(spawn_server_reply_kv, &make(6), warmup(), window()).mops,
        )?;
        row(
            w,
            "fig17",
            "rdma_memcached",
            size,
            run_kv(spawn_memcached, &make(16), warmup(), window()).mops,
        )?;
    }
    // The mixed-size run (§4.4.3 text: Jakiro 3.58, ServerReply 1.49,
    // RDMA-Memcached 1.02 MOPS).
    let mixed = |threads: usize| SystemConfig {
        server_threads: threads,
        spec: WorkloadSpec {
            key_count: KEYS,
            values: ValueSize::Uniform { min: 32, max: 8192 },
            ..WorkloadSpec::paper_default()
        },
        rfp: RfpConfig {
            retry_threshold: r,
            fetch_size: f,
            check_cpu: SimSpan::nanos(30),
            post_cpu: SimSpan::nanos(50),
            ..RfpConfig::default()
        },
        ..SystemConfig::default()
    };
    row(
        w,
        "fig17",
        "jakiro",
        "mixed",
        run_kv(spawn_jakiro, &mixed(6), warmup(), window()).mops,
    )?;
    row(
        w,
        "fig17",
        "server_reply",
        "mixed",
        run_kv(spawn_server_reply_kv, &mixed(6), warmup(), window()).mops,
    )?;
    row(
        w,
        "fig17",
        "rdma_memcached",
        "mixed",
        run_kv(spawn_memcached, &mixed(16), warmup(), window()).mops,
    )?;
    Ok(())
}

/// Figure 18: Jakiro throughput vs value size under different fixed
/// fetch sizes `F` — the ablation behind the `F` selection.
pub fn fig18(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig18: Jakiro vs value size for several fetch sizes F")?;
    let (r, f_sel) = preselect(ValueSize::Uniform { min: 32, max: 2048 }, 35);
    writeln!(w, "# selector would pick R={r} F={f_sel} for 32..2048")?;
    for f in [256usize, 448, 512, 640, 1024] {
        for size in [32usize, 64, 128, 256, 384, 512, 640, 768, 1024, 2048] {
            let cfg = SystemConfig {
                spec: WorkloadSpec {
                    key_count: KEYS,
                    values: ValueSize::Fixed(size),
                    ..WorkloadSpec::paper_default()
                },
                rfp: RfpConfig {
                    retry_threshold: 5,
                    fetch_size: f,
                    check_cpu: SimSpan::nanos(30),
                    post_cpu: SimSpan::nanos(50),
                    ..RfpConfig::default()
                },
                ..SystemConfig::default()
            };
            let run = run_kv(spawn_jakiro, &cfg, warmup(), window());
            row(w, "fig18", &format!("F{f}"), size, run.mops)?;
        }
    }
    Ok(())
}

/// Figure 19: throughput vs GET percentage under Zipf(0.99) keys.
pub fn fig19(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig19: throughput vs GET%, zipf(.99), 32B values")?;
    for (label, mix) in [
        ("95", OpMix::READ_INTENSIVE),
        ("50", OpMix::BALANCED),
        ("5", OpMix::WRITE_INTENSIVE),
    ] {
        let (mut jc, mut sc, mut mc) = peak_cfgs();
        for c in [&mut jc, &mut sc, &mut mc] {
            c.spec.mix = mix;
            c.spec.keys = KeyDist::Zipf(0.99);
        }
        row(
            w,
            "fig19",
            "jakiro",
            label,
            run_kv(spawn_jakiro, &jc, warmup(), window()).mops,
        )?;
        row(
            w,
            "fig19",
            "server_reply",
            label,
            run_kv(spawn_server_reply_kv, &sc, warmup(), window()).mops,
        )?;
        row(
            w,
            "fig19",
            "rdma_memcached",
            label,
            run_kv(spawn_memcached, &mc, warmup(), window()).mops,
        )?;
    }
    Ok(())
}

/// Figure 20: latency CDF under the skewed read-intensive workload.
pub fn fig20(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# fig20: latency CDF, zipf(.99) 95% GET")?;
    let (mut jc, mut sc, mut mc) = peak_cfgs();
    for c in [&mut jc, &mut sc, &mut mc] {
        c.spec.keys = KeyDist::Zipf(0.99);
    }
    cdf_rows(
        w,
        "fig20",
        "jakiro",
        &run_kv(spawn_jakiro, &jc, warmup(), window()),
    )?;
    cdf_rows(
        w,
        "fig20",
        "server_reply",
        &run_kv(spawn_server_reply_kv, &sc, warmup(), window()),
    )?;
    cdf_rows(
        w,
        "fig20",
        "rdma_memcached",
        &run_kv(spawn_memcached, &mc, warmup(), window()),
    )?;
    Ok(())
}

/// Table 3: remote-fetch retry statistics across the four workloads
/// (uniform/skewed × 95%/5% GET).
pub fn table3(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# table3: fetch attempts needing retries, per workload")?;
    for (label, keys, mix) in [
        ("uniform_95get", KeyDist::Uniform, OpMix::READ_INTENSIVE),
        ("uniform_5get", KeyDist::Uniform, OpMix::WRITE_INTENSIVE),
        ("skewed_95get", KeyDist::Zipf(0.99), OpMix::READ_INTENSIVE),
        ("skewed_5get", KeyDist::Zipf(0.99), OpMix::WRITE_INTENSIVE),
    ] {
        let mut cfg = kv_cfg(KEYS);
        cfg.spec.keys = keys;
        cfg.spec.mix = mix;
        let run = run_kv(spawn_jakiro, &cfg, warmup(), window());
        // The paper's N counts failed-fetch *retries*; max attempts is
        // therefore max N + 1.
        row(
            w,
            "table3",
            &format!("{label}_pct_n_gt1"),
            "-",
            run.frac_retries_gt1 * 100.0,
        )?;
        row(
            w,
            "table3",
            &format!("{label}_max_n"),
            "-",
            run.max_attempts.saturating_sub(1) as f64,
        )?;
        row(
            w,
            "table3",
            &format!("{label}_switches"),
            "-",
            run.switches_to_reply as f64,
        )?;
    }
    Ok(())
}

/// Every experiment, in paper order.
pub fn all(w: &mut dyn Write) -> io::Result<()> {
    for (name, f) in EXPERIMENTS {
        writeln!(w, "## {name}")?;
        f(w)?;
    }
    Ok(())
}

/// An experiment runner writing its CSV rows to the given sink.
pub type ExperimentFn = fn(&mut dyn Write) -> io::Result<()>;

/// Registry of all experiments (name, runner).
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("fig03_asymmetry", fig03),
    ("fig04_inbound_scaling", fig04),
    ("fig05_size_sweep", fig05),
    ("fig06_amplification", fig06),
    ("fig09_process_time", fig09),
    ("fig10_jakiro_clients", fig10),
    ("fig11_vs_pilaf", fig11),
    ("fig12_server_threads", fig12),
    ("fig13_latency_cdf", fig13),
    ("fig14_mode_switch", fig14),
    ("fig15_client_cpu", fig15),
    ("fig16_get_ratio", fig16),
    ("fig17_value_size", fig17),
    ("fig18_fetch_size", fig18),
    ("fig19_skew", fig19),
    ("fig20_skew_cdf", fig20),
    ("table3_retries", table3),
];
