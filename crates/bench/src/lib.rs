//! Benchmark harnesses regenerating every table and figure of the RFP
//! paper's evaluation (§2 micro-benchmarks and §4 system results).
//!
//! Each experiment is a library function in [`figures`] writing
//! `figure,series,x,y`-style CSV rows (comment lines start with `#`),
//! wrapped by a binary of the same name in `src/bin/`. Run one with e.g.
//!
//! ```text
//! cargo run --release -p rfp-bench --bin fig12_server_threads
//! ```
//!
//! or everything via `--bin all_figures` (which writes
//! `EXPERIMENTS-data/` files when given a directory argument).
//!
//! The per-experiment index mapping figures to modules lives in
//! `DESIGN.md`; paper-vs-measured numbers are recorded in
//! `EXPERIMENTS.md`.

pub mod ablations;
pub mod figures;
pub mod kvrun;
pub mod micro;
pub mod telemetry;

/// Runs the registered experiment `name` (see
/// [`figures::EXPERIMENTS`]) to stdout, then exports the accumulated
/// process-wide bench registry as `BENCH_<name>.json`.
///
/// # Panics
///
/// Panics on an unknown experiment name or an I/O failure — these are
/// terminal for a figure binary.
pub fn run_experiment(name: &str) {
    let (_, f) = figures::EXPERIMENTS
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown experiment {name}"));
    let mut out = std::io::stdout().lock();
    f(&mut out).expect("write to stdout");
    drop(out);
    let path = telemetry::emit_bench_json(name).expect("write bench json");
    eprintln!("# bench registry exported to {}", path.display());
}

/// Simulated-time measurement window used by most experiments. Long
/// enough that queueing transients vanish, short enough that a full
/// figure regenerates in seconds.
pub const DEFAULT_WINDOW_MS: u64 = 4;

/// Simulated warm-up discarded before each measurement.
pub const DEFAULT_WARMUP_MS: u64 = 1;
