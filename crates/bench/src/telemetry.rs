//! Process-wide benchmark telemetry.
//!
//! Every [`run_kv`](crate::kvrun::run_kv) measurement folds its headline
//! numbers into one process-wide [`MetricsRegistry`]; a figure binary
//! finishes by calling [`emit_bench_json`] (usually through
//! [`run_experiment`](crate::run_experiment)), leaving a machine-readable
//! `BENCH_<name>.json` next to the CSV it printed.

use std::fs::File;
use std::io;
use std::path::PathBuf;

use rfp_simnet::MetricsRegistry;

thread_local! {
    static REGISTRY: MetricsRegistry = MetricsRegistry::new();
}

/// The registry accumulating this process's benchmark aggregates
/// (`bench.*`). Clones share the same instruments.
pub fn bench_registry() -> MetricsRegistry {
    REGISTRY.with(MetricsRegistry::clone)
}

/// Exports the accumulated bench registry as `BENCH_<name>.json` in the
/// current directory and returns the path written.
pub fn emit_bench_json(name: &str) -> io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut file = File::create(&path)?;
    bench_registry().snapshot().write_json(&mut file)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_registry_is_shared_within_the_thread() {
        bench_registry().counter("bench.test.shared").add(2);
        bench_registry().counter("bench.test.shared").incr();
        assert_eq!(
            bench_registry().snapshot().scalar("bench.test.shared"),
            Some(3.0)
        );
    }
}
