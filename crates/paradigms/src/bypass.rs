//! The server-bypass paradigm.
//!
//! Clients operate on server memory with one-sided verbs only; the
//! server CPU never sees a request. This crate provides the client-side
//! toolkit that bypass-based applications (like the Pilaf-style store in
//! `rfp-kvstore`) build on, plus the synthetic amplification driver
//! behind the paper's Figure 6: a "request" that needs `k` dependent
//! RDMA operations completes at 1/k of the NIC's op rate — *bypass
//! access amplification*.

use std::rc::Rc;

use rfp_rnic::{MemRegion, Qp, ThreadCtx};

/// Client-side handle for one-sided access to a server's exposed
/// regions.
///
/// Wraps a QP plus a local scratch region so call sites read like the
/// pseudo-code of the paper's Figure 8(b): probe metadata, fetch data,
/// verify, retry.
pub struct BypassClient {
    qp: Rc<Qp>,
    scratch: Rc<MemRegion>,
}

impl BypassClient {
    /// Creates a bypass client; `scratch_len` bounds the largest single
    /// fetch.
    pub fn new(qp: Rc<Qp>, scratch_len: usize) -> Self {
        let scratch = qp.local().alloc_mr(scratch_len);
        BypassClient { qp, scratch }
    }

    /// The underlying queue pair.
    pub fn qp(&self) -> &Rc<Qp> {
        &self.qp
    }

    /// Reads `len` bytes at `off` of the server region into a fresh
    /// buffer (one in-bound op at the server).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the scratch capacity or the remote range
    /// is out of bounds.
    pub async fn fetch(
        &self,
        thread: &ThreadCtx,
        remote: &Rc<MemRegion>,
        off: usize,
        len: usize,
    ) -> Vec<u8> {
        assert!(len <= self.scratch.len(), "fetch exceeds scratch buffer");
        self.qp
            .read(thread, &self.scratch, 0, remote, off, len)
            .await;
        self.scratch.read_local(0, len)
    }

    /// Writes `data` at `off` of the server region (one in-bound op at
    /// the server).
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds the scratch capacity or the remote range
    /// is out of bounds.
    pub async fn store(&self, thread: &ThreadCtx, remote: &Rc<MemRegion>, off: usize, data: &[u8]) {
        assert!(data.len() <= self.scratch.len(), "store exceeds scratch");
        self.scratch.write_local(0, data);
        self.qp
            .write(thread, &self.scratch, 0, remote, off, data.len())
            .await;
    }

    /// The Figure 6 synthetic: completes one "request" that requires
    /// `rounds` dependent one-sided READs of `bytes` each (metadata
    /// probes, data fetches, conflict-resolution retries…).
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub async fn amplified_request(
        &self,
        thread: &ThreadCtx,
        remote: &Rc<MemRegion>,
        rounds: u32,
        bytes: usize,
    ) {
        assert!(rounds > 0, "a request needs at least one op");
        for i in 0..rounds {
            // Dependent accesses: each round targets an offset "learned"
            // from the previous one, so rounds cannot be overlapped.
            let off = (i as usize * bytes) % (remote.len() - bytes + 1);
            self.fetch(thread, remote, off, bytes).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_rnic::{Cluster, ClusterProfile};
    use rfp_simnet::{SimSpan, Simulation};
    use std::cell::Cell;

    #[test]
    fn fetch_and_store_round_trip() {
        let mut sim = Simulation::new(5);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let server = cluster.machine(1);
        let region = server.alloc_mr(1024);
        let client = BypassClient::new(cluster.qp(0, 1), 512);
        let t = cluster.machine(0).thread("c");
        let ok = Rc::new(Cell::new(false));
        let o = Rc::clone(&ok);
        sim.spawn(async move {
            client.store(&t, &region, 100, b"bypassed").await;
            let back = client.fetch(&t, &region, 100, 8).await;
            assert_eq!(&back, b"bypassed");
            o.set(true);
        });
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn amplification_divides_throughput() {
        // Completing requests of k dependent rounds takes ~k times as
        // long as k=1 (Figure 6's mechanism).
        let run = |rounds: u32| {
            let mut sim = Simulation::new(5);
            let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
            let region = cluster.machine(1).alloc_mr(4096);
            let client = BypassClient::new(cluster.qp(0, 1), 512);
            let t = cluster.machine(0).thread("c");
            let count = Rc::new(Cell::new(0u64));
            let c = Rc::clone(&count);
            sim.spawn(async move {
                loop {
                    client.amplified_request(&t, &region, rounds, 32).await;
                    c.set(c.get() + 1);
                }
            });
            sim.run_for(SimSpan::millis(2));
            count.get()
        };
        let one = run(1);
        let four = run(4);
        let ratio = one as f64 / four as f64;
        assert!(
            (3.5..4.5).contains(&ratio),
            "4 rounds should quarter request rate: {one} vs {four}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn zero_round_request_rejected() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let region = cluster.machine(1).alloc_mr(128);
        let client = BypassClient::new(cluster.qp(0, 1), 64);
        let t = cluster.machine(0).thread("c");
        sim.spawn(async move {
            client.amplified_request(&t, &region, 0, 32).await;
        });
        sim.run();
    }
}
