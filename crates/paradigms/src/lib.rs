//! Baseline RDMA RPC paradigms and the design-choice taxonomy.
//!
//! The paper's Table 1 enumerates every way to apply RDMA to the three
//! steps of an RPC (request send, request process, result return); this
//! crate encodes that taxonomy ([`taxonomy`]) and implements the two
//! baseline paradigms RFP is compared against:
//!
//! * [`server_reply`] — the classic port: the server processes requests
//!   and pushes results back with out-bound WRITE. Bound by the server
//!   NIC's out-bound rate (~2.11 MOPS on the modelled hardware).
//! * [`bypass`] — full server-bypass: clients operate on server memory
//!   with one-sided verbs only. Fast per op, but suffers *bypass access
//!   amplification* (multiple rounds per logical request, §2.3).
//! * [`herd`] — a HERD-style transport over the unreliable UC/UD
//!   service types (§5): higher message rates than RC, at the price of
//!   loss handling (timeouts, retransmission, deduplication).

pub mod bypass;
pub mod herd;
pub mod server_reply;
pub mod taxonomy;

pub use bypass::BypassClient;
pub use herd::{herd_connect, HerdClient, HerdConfig, HerdServerConn};
pub use server_reply::sr_connect;
pub use taxonomy::{Paradigm, ProcessChoice, RequestSend, ResultReturn};
