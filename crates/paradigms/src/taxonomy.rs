//! The design-choice taxonomy of Table 1.
//!
//! A typical RPC has three steps (Figure 2): the client sends the
//! request, someone processes it, and the result returns to the client.
//! With RDMA each step has a fixed menu of options; combining them
//! yields exactly the three useful paradigms (server-reply,
//! server-bypass, RFP) plus one meaningless corner.

use std::fmt;

/// Step 1 — request send. The server cannot know when a client will
/// invoke an RPC, so the only choice is the client issuing out-bound
/// RDMA (which the server's NIC serves in-bound).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RequestSend {
    /// Client out-bound RDMA → server in-bound RDMA.
    ClientOutbound,
}

/// Step 2 — request processing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProcessChoice {
    /// The server CPU handles the request: low porting cost, no
    /// application-specific concurrent data structures needed.
    ServerInvolved,
    /// The server is bypassed: zero server CPU, but clients must
    /// coordinate through specially designed data structures and may
    /// need extra RDMA rounds (bypass access amplification).
    ServerBypassed,
}

/// Step 3 — result return.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResultReturn {
    /// The server pushes the result: out-bound RDMA at the server.
    ServerPush,
    /// The client fetches the result: in-bound RDMA at the server.
    ClientFetch,
}

/// A complete paradigm: one choice per step.
///
/// # Examples
///
/// ```
/// use rfp_paradigms::Paradigm;
///
/// // RFP is the only row of Table 1 that keeps the server NIC
/// // in-bound-only *and* supports legacy RPC applications.
/// assert!(Paradigm::RFP.server_handles_only_inbound());
/// assert!(Paradigm::RFP.supports_legacy_rpc());
/// assert!(!Paradigm::SERVER_REPLY.server_handles_only_inbound());
/// assert!(!Paradigm::SERVER_BYPASS.supports_legacy_rpc());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Paradigm {
    /// Step 1 choice.
    pub send: RequestSend,
    /// Step 2 choice.
    pub process: ProcessChoice,
    /// Step 3 choice.
    pub ret: ResultReturn,
}

/// The named rows of Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Named {
    /// Server involved, server pushes results (classic RDMA port).
    ServerReply,
    /// Server bypassed, client fetches results (Pilaf/FaRM style).
    ServerBypass,
    /// Server involved, client fetches results (this paper).
    Rfp,
    /// Server bypassed yet pushing results: nobody to push — the server
    /// would have to notice results it never computed.
    Meaningless,
}

impl Paradigm {
    /// Server-reply: in-bound request, server processes, out-bound
    /// result.
    pub const SERVER_REPLY: Paradigm = Paradigm {
        send: RequestSend::ClientOutbound,
        process: ProcessChoice::ServerInvolved,
        ret: ResultReturn::ServerPush,
    };

    /// Server-bypass: in-bound request (or none), server bypassed,
    /// client fetches.
    pub const SERVER_BYPASS: Paradigm = Paradigm {
        send: RequestSend::ClientOutbound,
        process: ProcessChoice::ServerBypassed,
        ret: ResultReturn::ClientFetch,
    };

    /// RFP: in-bound request, server processes, client fetches —
    /// the server NIC handles **only in-bound** RDMA.
    pub const RFP: Paradigm = Paradigm {
        send: RequestSend::ClientOutbound,
        process: ProcessChoice::ServerInvolved,
        ret: ResultReturn::ClientFetch,
    };

    /// Classifies this combination as one of Table 1's rows.
    pub fn classify(self) -> Named {
        match (self.process, self.ret) {
            (ProcessChoice::ServerInvolved, ResultReturn::ServerPush) => Named::ServerReply,
            (ProcessChoice::ServerBypassed, ResultReturn::ClientFetch) => Named::ServerBypass,
            (ProcessChoice::ServerInvolved, ResultReturn::ClientFetch) => Named::Rfp,
            (ProcessChoice::ServerBypassed, ResultReturn::ServerPush) => Named::Meaningless,
        }
    }

    /// Whether the server's NIC only ever serves in-bound RDMA under
    /// this paradigm — the property RFP exploits against the in/out
    /// asymmetry.
    pub fn server_handles_only_inbound(self) -> bool {
        self.ret == ResultReturn::ClientFetch
    }

    /// Whether legacy RPC applications port without redesigning their
    /// data structures.
    pub fn supports_legacy_rpc(self) -> bool {
        self.process == ProcessChoice::ServerInvolved
    }

    /// All four combinations, in Table 1 row order.
    pub fn all() -> [Paradigm; 4] {
        [
            Paradigm::SERVER_REPLY,
            Paradigm::SERVER_BYPASS,
            Paradigm::RFP,
            Paradigm {
                send: RequestSend::ClientOutbound,
                process: ProcessChoice::ServerBypassed,
                ret: ResultReturn::ServerPush,
            },
        ]
    }
}

impl fmt::Display for Paradigm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.classify())
    }
}

#[cfg(test)]
mod taxonomy_tests {
    use super::*;

    #[test]
    fn table1_rows_classify_correctly() {
        assert_eq!(Paradigm::SERVER_REPLY.classify(), Named::ServerReply);
        assert_eq!(Paradigm::SERVER_BYPASS.classify(), Named::ServerBypass);
        assert_eq!(Paradigm::RFP.classify(), Named::Rfp);
        let meaningless = Paradigm {
            send: RequestSend::ClientOutbound,
            process: ProcessChoice::ServerBypassed,
            ret: ResultReturn::ServerPush,
        };
        assert_eq!(meaningless.classify(), Named::Meaningless);
    }

    #[test]
    fn rfp_is_the_unique_legacy_friendly_inbound_only_paradigm() {
        let winners: Vec<Paradigm> = Paradigm::all()
            .into_iter()
            .filter(|p| p.server_handles_only_inbound() && p.supports_legacy_rpc())
            .collect();
        assert_eq!(winners, vec![Paradigm::RFP]);
    }

    #[test]
    fn exactly_four_combinations_exist() {
        let all = Paradigm::all();
        assert_eq!(all.len(), 4);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
