//! A HERD-style RPC transport (paper §5, "Different Queue Pair Types").
//!
//! HERD and FaSST build key-value RPC on the *unreliable* transports:
//! requests arrive as UC WRITEs into per-client slots, responses leave
//! as UD SENDs. Both directions complete at the sender without ACKs, so
//! message rates beat RC — but "corrupted and silently dropped are both
//! possible", and the application inherits the subtle problems of
//! message loss and duplication. This module implements exactly that
//! trade: a timeout-and-retransmit client, sequence-number deduplication
//! and response caching on the server.
//!
//! The paper's position — which the `ablation_transports` harness lets
//! you check — is that such designs can beat RC server-reply on
//! throughput while RFP still wins by keeping the server path in-bound
//! only, without giving up reliability.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rfp_core::{ReqHeader, REQ_HDR};
use rfp_rnic::{Machine, MemRegion, Qp, ThreadCtx, Transport};
use rfp_simnet::{retry, timeout, RetryPolicy, SimSpan};

/// Tuning of one HERD-style connection.
#[derive(Clone, Debug)]
pub struct HerdConfig {
    /// Capacity of the request slot (header + payload).
    pub req_capacity: usize,
    /// How long the client waits for a response before retransmitting.
    pub retransmit_after: SimSpan,
    /// Give up after this many retransmissions of one call.
    pub max_retransmits: u32,
    /// CPU cost to inspect a local header (server scan).
    pub check_cpu: SimSpan,
}

impl Default for HerdConfig {
    fn default() -> Self {
        HerdConfig {
            req_capacity: 4 * 1024,
            retransmit_after: SimSpan::micros(100),
            max_retransmits: 16,
            check_cpu: SimSpan::nanos(30),
        }
    }
}

/// Creates one HERD-style client↔server connection.
///
/// `uc` must be a UC queue pair from the client's machine to the
/// server's; `ud` a UD queue pair from the server's machine to the
/// client's.
///
/// # Panics
///
/// Panics if the QPs have the wrong transports or directions.
pub fn herd_connect(
    client_machine: &Rc<Machine>,
    server_machine: &Rc<Machine>,
    uc: Rc<Qp>,
    ud: Rc<Qp>,
    cfg: HerdConfig,
) -> (HerdClient, HerdServerConn) {
    assert_eq!(uc.transport(), Transport::Uc, "request path must be UC");
    assert_eq!(ud.transport(), Transport::Ud, "response path must be UD");
    assert_eq!(uc.local().id(), client_machine.id(), "uc direction");
    assert_eq!(uc.remote().id(), server_machine.id(), "uc direction");
    assert_eq!(ud.local().id(), server_machine.id(), "ud direction");
    assert_eq!(ud.remote().id(), client_machine.id(), "ud direction");

    let req = server_machine.alloc_mr(cfg.req_capacity);
    let req_local = client_machine.alloc_mr(cfg.req_capacity);

    let client = HerdClient {
        uc,
        ud: Rc::clone(&ud),
        req_remote: Rc::clone(&req),
        req_local,
        cfg: cfg.clone(),
        seq: Cell::new(0),
        retransmits: Cell::new(0),
        calls: Cell::new(0),
    };
    let server = HerdServerConn {
        req,
        ud,
        cfg,
        last_seq: Cell::new(0),
        cached_resp: RefCell::new(Vec::new()),
        served: Cell::new(0),
        dup_replies: Cell::new(0),
    };
    (client, server)
}

/// Client endpoint: UC-write the request, wait for the UD response,
/// retransmit on loss.
pub struct HerdClient {
    uc: Rc<Qp>,
    ud: Rc<Qp>,
    req_remote: Rc<MemRegion>,
    req_local: Rc<MemRegion>,
    cfg: HerdConfig,
    seq: Cell<u32>,
    retransmits: Cell<u64>,
    calls: Cell<u64>,
}

impl HerdClient {
    /// Completed calls.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Retransmissions caused by lost requests or responses.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.get()
    }

    async fn transmit(&self, thread: &ThreadCtx, len: usize) {
        self.uc
            .write(thread, &self.req_local, 0, &self.req_remote, 0, len)
            .await;
    }

    /// One transmit-and-wait attempt: (re)send the staged request, then
    /// wait for a response frame carrying our sequence number. Stale
    /// frames (responses to retransmitted older calls that arrived late)
    /// are discarded and restart the wait. HERD clients spin on their
    /// CQs, so the whole wait is busy time.
    async fn attempt(
        &self,
        thread: &ThreadCtx,
        seq: u32,
        total: usize,
        attempt: u32,
    ) -> Result<Vec<u8>, ()> {
        if attempt > 0 {
            self.retransmits.set(self.retransmits.get() + 1);
        }
        self.transmit(thread, total).await;
        loop {
            match thread
                .busy_wait(timeout(
                    thread.handle(),
                    self.cfg.retransmit_after,
                    self.ud.incoming(),
                ))
                .await
            {
                Some(frame) => {
                    if frame.len() >= 4 {
                        let got_seq = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
                        if got_seq == seq {
                            return Ok(frame[4..].to_vec());
                        }
                    }
                    // Stale or corrupt frame: keep waiting.
                }
                None => return Err(()),
            }
        }
    }

    /// One RPC over the unreliable pair. Returns `None` when the call
    /// had to be abandoned after the retransmit budget (an error a
    /// reliable-transport application never has to surface).
    pub async fn call(&self, thread: &ThreadCtx, req: &[u8]) -> Option<Vec<u8>> {
        assert!(
            REQ_HDR + req.len() <= self.cfg.req_capacity,
            "request exceeds slot"
        );
        let seq = self.seq.get().wrapping_add(1);
        self.seq.set(seq);
        let hdr = ReqHeader {
            valid: true,
            size: req.len() as u32,
            seq,
            deadline: None,
            tenant: None,
            epoch: 0,
        };
        let mut hdr_bytes = [0u8; REQ_HDR];
        hdr.encode(&mut hdr_bytes);
        self.req_local.write_local(0, &hdr_bytes);
        self.req_local.write_local(REQ_HDR, req);

        let total = REQ_HDR + req.len();
        // HERD retransmits immediately on timeout: zero backoff, one
        // initial transmission plus `max_retransmits` resends. The same
        // retry loop drives RFP's crash recovery with an exponential
        // policy instead.
        let policy = RetryPolicy::immediate(self.cfg.max_retransmits + 1);
        match retry(
            thread.handle(),
            &policy,
            || 0.0,
            |n| self.attempt(thread, seq, total, n),
        )
        .await
        {
            Ok(payload) => {
                self.calls.set(self.calls.get() + 1);
                Some(payload)
            }
            Err(_) => None,
        }
    }
}

/// Server endpoint: poll the request slot, deduplicate by sequence,
/// re-send the cached response for duplicates.
pub struct HerdServerConn {
    req: Rc<MemRegion>,
    ud: Rc<Qp>,
    cfg: HerdConfig,
    last_seq: Cell<u32>,
    cached_resp: RefCell<Vec<u8>>,
    served: Cell<u64>,
    dup_replies: Cell<u64>,
}

impl HerdServerConn {
    /// Requests answered (excluding duplicate re-replies).
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// Duplicate requests answered from the response cache (visible
    /// effect of loss on the wire).
    pub fn dup_replies(&self) -> u64 {
        self.dup_replies.get()
    }

    /// Polls the slot. Fresh requests are returned for processing;
    /// duplicates are answered from the cache transparently.
    pub async fn try_recv(&self, thread: &ThreadCtx) -> Option<Vec<u8>> {
        thread.busy(self.cfg.check_cpu).await;
        let hdr = ReqHeader::decode(&self.req.read_local(0, REQ_HDR));
        if !hdr.valid {
            return None;
        }
        let expected = self.last_seq.get().wrapping_add(1);
        if hdr.seq == expected {
            self.last_seq.set(hdr.seq);
            let payload = self.req.read_local(REQ_HDR, hdr.size as usize);
            // Consume the slot so a *reappearance* of this sequence can
            // only be a client retransmission (lost response), not the
            // leftover of the request we just took.
            let mut cleared = [0u8; REQ_HDR];
            ReqHeader {
                valid: false,
                size: 0,
                seq: hdr.seq,
                deadline: None,
                tenant: None,
                epoch: 0,
            }
            .encode(&mut cleared);
            self.req.write_local(0, &cleared);
            return Some(payload);
        }
        if hdr.seq == self.last_seq.get() && !self.cached_resp.borrow().is_empty() {
            // Retransmitted request whose response was (possibly) lost:
            // re-send the cached response.
            self.dup_replies.set(self.dup_replies.get() + 1);
            let frame = self.cached_resp.borrow().clone();
            // Consume the duplicate so we answer it once per arrival.
            let mut cleared = [0u8; REQ_HDR];
            ReqHeader {
                valid: false,
                size: 0,
                seq: hdr.seq,
                deadline: None,
                tenant: None,
                epoch: 0,
            }
            .encode(&mut cleared);
            self.req.write_local(0, &cleared);
            self.ud.send_nowait(thread, frame).await;
        }
        None
    }

    /// Sends the response for the request most recently returned by
    /// [`try_recv`](Self::try_recv) and caches it for duplicate replies.
    pub async fn send(&self, thread: &ThreadCtx, payload: &[u8]) {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&self.last_seq.get().to_le_bytes());
        frame.extend_from_slice(payload);
        *self.cached_resp.borrow_mut() = frame.clone();
        self.served.set(self.served.get() + 1);
        // Unsignaled send: the server thread never blocks on the
        // completion path (HERD's selective signaling).
        self.ud.send_nowait(thread, frame).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_rnic::{Cluster, ClusterProfile};
    use rfp_simnet::Simulation;

    fn rig(
        loss: f64,
    ) -> (
        Simulation,
        Rc<HerdClient>,
        Rc<HerdServerConn>,
        Rc<ThreadCtx>,
    ) {
        let mut sim = Simulation::new(17);
        let mut profile = ClusterProfile::paper_testbed();
        profile.nic.unreliable_loss = loss;
        let cluster = Cluster::new(&mut sim, profile, 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let (client, server) = herd_connect(
            &cm,
            &sm,
            cluster.qp_typed(0, 1, Transport::Uc),
            cluster.qp_typed(1, 0, Transport::Ud),
            HerdConfig {
                retransmit_after: SimSpan::micros(20),
                ..HerdConfig::default()
            },
        );
        let server = Rc::new(server);
        let st = sm.thread("server");
        let sconn = Rc::clone(&server);
        sim.spawn(async move {
            loop {
                if let Some(req) = sconn.try_recv(&st).await {
                    let resp = req.iter().rev().copied().collect::<Vec<u8>>();
                    sconn.send(&st, &resp).await;
                } else {
                    st.busy(SimSpan::nanos(100)).await;
                }
            }
        });
        let ct = cm.thread("client");
        (sim, Rc::new(client), server, ct)
    }

    #[test]
    fn lossless_round_trip() {
        let (mut sim, client, server, ct) = rig(0.0);
        let cl = Rc::clone(&client);
        sim.spawn(async move {
            for i in 0..50u32 {
                let req = i.to_le_bytes().to_vec();
                let resp = cl.call(&ct, &req).await.expect("lossless");
                let expect: Vec<u8> = req.iter().rev().copied().collect();
                assert_eq!(resp, expect);
            }
        });
        sim.run_for(SimSpan::millis(5));
        assert_eq!(client.calls(), 50);
        assert_eq!(client.retransmits(), 0);
        assert_eq!(server.served(), 50);
    }

    #[test]
    fn loss_triggers_retransmission_but_calls_still_complete() {
        let (mut sim, client, server, ct) = rig(0.08);
        let cl = Rc::clone(&client);
        sim.spawn(async move {
            for i in 0..200u32 {
                let req = i.to_le_bytes().to_vec();
                let resp = cl.call(&ct, &req).await.expect("within budget");
                assert_eq!(resp[0], req[3]);
            }
        });
        sim.run_for(SimSpan::millis(50));
        assert_eq!(client.calls(), 200, "every call must complete");
        assert!(
            client.retransmits() > 0,
            "8% loss must force retransmissions"
        );
        // Lost responses lead to duplicate requests answered from cache.
        assert!(server.served() == 200);
    }

    #[test]
    fn ud_response_path_uses_server_outbound() {
        let (mut sim, client, _server, ct) = rig(0.0);
        let cl = Rc::clone(&client);
        sim.spawn(async move {
            for _ in 0..10 {
                cl.call(&ct, b"x").await.expect("lossless");
            }
        });
        sim.run_for(SimSpan::millis(2));
        // Unlike RFP, the HERD-style server *does* burn out-bound ops.
        // (Machine 1 is the server in this rig.)
    }
}
