//! The server-reply baseline.
//!
//! The classic way to port an RPC system to RDMA (RDMA-Memcached,
//! RDMA-HDFS, …): keep the socket-shaped interface, let the server push
//! each result back with an out-bound WRITE. Exactly the paper's
//! *ServerReply* comparator, which it builds by modifying Jakiro's
//! result-return step — we do the same by instantiating the RFP
//! connection machinery pinned to server-reply mode with the hybrid
//! switch disabled. The server's out-bound engine (~2.11 MOPS) becomes
//! the throughput ceiling.

use std::rc::Rc;

use rfp_core::{connect, Mode, RfpClient, RfpConfig, RfpServerConn};
use rfp_rnic::{Machine, Qp};

/// Creates a client↔server connection that always uses server-reply.
///
/// The returned endpoints are ordinary RFP endpoints whose mode is
/// pinned; drive the server side with [`rfp_core::serve_loop`] as usual.
pub fn sr_connect(
    client_machine: &Rc<Machine>,
    server_machine: &Rc<Machine>,
    qp_c2s: Rc<Qp>,
    qp_s2c: Rc<Qp>,
    mut cfg: RfpConfig,
) -> (RfpClient, RfpServerConn) {
    cfg.initial_mode = Mode::ServerReply;
    cfg.enable_mode_switch = false;
    connect(client_machine, server_machine, qp_c2s, qp_s2c, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_core::serve_loop;
    use rfp_rnic::{Cluster, ClusterProfile};
    use rfp_simnet::{SimSpan, Simulation};
    use std::cell::Cell;

    #[test]
    fn server_reply_answers_via_outbound_write() {
        let mut sim = Simulation::new(3);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let (client, conn) = sr_connect(
            &cm,
            &sm,
            cluster.qp(0, 1),
            cluster.qp(1, 0),
            RfpConfig::default(),
        );
        let conn = Rc::new(conn);
        let st = sm.thread("server");
        sim.spawn(serve_loop(
            st,
            vec![Rc::clone(&conn)],
            |req: &[u8]| (req.to_vec(), SimSpan::ZERO),
            SimSpan::nanos(100),
        ));
        let ct = cm.thread("client");
        let done = Rc::new(Cell::new(0u32));
        let d = Rc::clone(&done);
        let cl = Rc::new(client);
        let cl2 = Rc::clone(&cl);
        sim.spawn(async move {
            for i in 0..20u32 {
                let out = cl2.call(&ct, &i.to_le_bytes()).await;
                assert_eq!(out.data, i.to_le_bytes());
                assert_eq!(out.info.completed_in, Mode::ServerReply);
                d.set(d.get() + 1);
            }
        });
        sim.run_for(SimSpan::millis(5));
        assert_eq!(done.get(), 20);
        // Every response was pushed out-of-band (out-bound at server)…
        assert_eq!(conn.replied_out_of_band(), 20);
        // …and the client never switched away despite the fast server.
        assert_eq!(cl.stats().switches_to_fetch(), 0);
        assert_eq!(cl.mode(), Mode::ServerReply);
        // The server NIC really issued out-bound ops.
        assert!(sm.nic().counters().outbound_ops >= 20);
    }
}
