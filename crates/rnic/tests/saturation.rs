//! End-to-end validation that the NIC model reproduces the paper's
//! micro-benchmark numbers (§2.2): ~11.26 MOPS in-bound, ~2.11 MOPS
//! out-bound for 32-byte payloads, and the decline of out-bound IOPS
//! with excess issuing threads.

use std::rc::Rc;

use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{SimSpan, Simulation};

const PAYLOAD: usize = 32;

/// 7 client machines × `threads_per_client` threads all issuing sync
/// 32 B READs at machine 0; returns server in-bound MOPS.
fn inbound_mops(threads_per_client: usize, measure: SimSpan) -> f64 {
    let mut sim = Simulation::new(1);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 8);
    let server = cluster.machine(0);
    let remote = server.alloc_mr(4096);

    for c in 1..8 {
        let client = cluster.machine(c);
        for t in 0..threads_per_client {
            let qp = cluster.qp(c, 0);
            let local = client.alloc_mr(4096);
            let thread = client.thread(format!("c{c}.{t}"));
            let r = Rc::clone(&remote);
            sim.spawn(async move {
                loop {
                    qp.read(&thread, &local, 0, &r, 0, PAYLOAD).await;
                }
            });
        }
    }

    // Warm up, reset counters, then measure.
    sim.run_for(SimSpan::millis(1));
    server.nic().reset_counters();
    let t0 = sim.now();
    sim.run_for(measure);
    let ops = server.nic().counters().inbound_ops;
    ops as f64 / (sim.now() - t0).as_secs_f64() / 1e6
}

/// `threads` server threads all issuing sync 32 B WRITEs to 7 clients;
/// returns server out-bound MOPS.
fn outbound_mops(threads: usize, measure: SimSpan) -> f64 {
    let mut sim = Simulation::new(2);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 8);
    let server = cluster.machine(0);

    for t in 0..threads {
        let target = 1 + (t % 7);
        let qp = cluster.qp(0, target);
        let local = server.alloc_mr(4096);
        let remote = cluster.machine(target).alloc_mr(4096);
        let thread = server.thread(format!("s{t}"));
        sim.spawn(async move {
            loop {
                qp.write(&thread, &local, 0, &remote, 0, PAYLOAD).await;
            }
        });
    }

    sim.run_for(SimSpan::millis(1));
    server.nic().reset_counters();
    let t0 = sim.now();
    sim.run_for(measure);
    let ops = server.nic().counters().outbound_ops;
    ops as f64 / (sim.now() - t0).as_secs_f64() / 1e6
}

#[test]
fn inbound_saturates_near_11_26_mops() {
    let mops = inbound_mops(5, SimSpan::millis(4));
    assert!(
        (10.5..11.5).contains(&mops),
        "saturated in-bound should be ≈11.26 MOPS, got {mops:.2}"
    );
}

#[test]
fn inbound_underload_scales_with_threads() {
    // 1 thread/machine: 7 threads bounded by per-op latency, far from peak.
    let m1 = inbound_mops(1, SimSpan::millis(2));
    let m3 = inbound_mops(3, SimSpan::millis(2));
    assert!(m1 < m3, "{m1} !< {m3}");
    assert!(
        (3.0..6.5).contains(&m1),
        "7 sync threads ≈ 7/1.5µs: {m1:.2}"
    );
}

#[test]
fn inbound_declines_with_client_contention() {
    // Figure 4: past ~35 client threads, client-side issuing contention
    // drags the server's in-bound rate back down.
    let at_peak = inbound_mops(5, SimSpan::millis(4));
    let overloaded = inbound_mops(10, SimSpan::millis(4));
    assert!(
        overloaded < at_peak * 0.97,
        "expected droop past peak: {at_peak:.2} -> {overloaded:.2}"
    );
}

#[test]
fn outbound_saturates_near_2_11_mops() {
    let mops = outbound_mops(4, SimSpan::millis(4));
    assert!(
        (1.9..2.2).contains(&mops),
        "saturated out-bound should be ≈2.11 MOPS, got {mops:.2}"
    );
}

#[test]
fn outbound_declines_with_many_threads() {
    // Figures 3/12: out-bound does not scale past a handful of threads.
    let at4 = outbound_mops(4, SimSpan::millis(4));
    let at16 = outbound_mops(16, SimSpan::millis(4));
    assert!(at16 < at4, "expected decline: {at4:.2} -> {at16:.2}");
}

#[test]
fn asymmetry_is_roughly_5x_at_saturation() {
    let inb = inbound_mops(5, SimSpan::millis(4));
    let out = outbound_mops(4, SimSpan::millis(4));
    let ratio = inb / out;
    assert!((4.0..6.5).contains(&ratio), "asymmetry ratio {ratio:.2}");
}
