//! Fault state consulted by the verb delivery paths.
//!
//! The chaos subsystem (`rfp-chaos`) injects faults by flipping the
//! cells below at scheduled sim instants; the NIC/QP code reads them on
//! every operation. All state is plain `Cell`s — checking a fault costs
//! one load and schedules nothing, so an idle fault plan leaves the
//! event stream (and therefore every metric and trace byte) unchanged.
//!
//! Fault classes:
//!
//! * **crash** — the machine's software is down. Verbs issued *by* it
//!   fail immediately ([`VerbError::LocalDown`]); verbs targeting it
//!   fail after the wire round trip ([`VerbError::RemoteDown`]), the
//!   way a real initiator only learns of a dead peer from the NACK /
//!   retry-exhausted completion.
//! * **QP error** — bumping [`MachineFaults::bump_qp_epoch`] moves every
//!   QP attached to the machine to the error state
//!   ([`VerbError::QpError`]); they must be re-established (a new QP
//!   picks up the current epoch).
//! * **loss burst** — [`MachineFaults::set_extra_loss`] raises the drop
//!   probability of unreliable (UC/UD) traffic touching the machine and
//!   makes reliable (RC) traffic pay occasional retransmission delays.
//! * **straggler** — [`MachineFaults::set_cpu_factor`] inflates
//!   explicit CPU costs ([`ThreadCtx::busy`](crate::ThreadCtx::busy))
//!   on the machine's cores.
//! * **link degradation** — [`FabricFaults::set_link_factor`] scales
//!   wire propagation cluster-wide.
//! * **slow link (gray)** — [`MachineFaults::set_wire_lag`] adds a
//!   jittered per-leg latency to every wire traversal touching the
//!   machine: the fail-slow NIC/cable that degrades tail latency
//!   without ever tripping an error completion.
//! * **asymmetric partition** — [`MachineFaults::block_to`] drops all
//!   traffic this machine sends *toward* one destination while the
//!   reverse direction keeps flowing, the way a bad switch rule or a
//!   one-way link failure partitions a real fabric. An op whose request
//!   leg is cut fails like a dead peer (after the retry-exhausted round
//!   trip, no remote side effect); an op whose *completion* leg is cut
//!   may land its payload remotely and still fail locally.

use std::cell::Cell;
use std::fmt;

/// Error completion of an RDMA verb under injected faults.
///
/// On a healthy cluster no verb ever returns one of these; the
/// infallible verb wrappers rely on that and panic if proven wrong.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VerbError {
    /// The issuing machine is crashed; nothing was put on the wire.
    LocalDown,
    /// The target machine is crashed; the op failed after the NACK /
    /// retry-exhausted round trip.
    RemoteDown,
    /// The queue pair is in the error state (its endpoint's QP epoch
    /// advanced since creation); it must be re-established.
    QpError,
}

impl fmt::Display for VerbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerbError::LocalDown => write!(f, "local machine is down"),
            VerbError::RemoteDown => write!(f, "remote machine is down"),
            VerbError::QpError => write!(f, "queue pair in error state"),
        }
    }
}

impl std::error::Error for VerbError {}

/// Mutable fault state of one machine.
#[derive(Debug)]
pub struct MachineFaults {
    crashed: Cell<bool>,
    extra_loss: Cell<f64>,
    cpu_factor: Cell<f64>,
    qp_epoch: Cell<u64>,
    torn_dma: Cell<f64>,
    bitflip: Cell<f64>,
    wire_lag: Cell<u64>,
    /// Bitmask of destination machines this machine cannot reach
    /// (bit `d` set = traffic toward machine `d` is dropped).
    blocked_out: Cell<u64>,
}

impl Default for MachineFaults {
    fn default() -> Self {
        MachineFaults {
            crashed: Cell::new(false),
            extra_loss: Cell::new(0.0),
            cpu_factor: Cell::new(1.0),
            qp_epoch: Cell::new(0),
            torn_dma: Cell::new(0.0),
            bitflip: Cell::new(0.0),
            wire_lag: Cell::new(0),
            blocked_out: Cell::new(0),
        }
    }
}

impl MachineFaults {
    /// Whether the machine's software is currently down.
    pub fn is_crashed(&self) -> bool {
        self.crashed.get()
    }

    /// Marks the machine crashed / restarted.
    pub fn set_crashed(&self, down: bool) {
        self.crashed.set(down);
    }

    /// Additional drop probability for unreliable traffic touching this
    /// machine (0 outside loss-burst windows).
    pub fn extra_loss(&self) -> f64 {
        self.extra_loss.get()
    }

    /// Opens/closes a loss-burst window.
    pub fn set_extra_loss(&self, p: f64) {
        self.extra_loss.set(p.clamp(0.0, 1.0));
    }

    /// Multiplier on explicit CPU costs of this machine's threads
    /// (1.0 = healthy, >1 = straggler).
    pub fn cpu_factor(&self) -> f64 {
        self.cpu_factor.get()
    }

    /// Sets the straggler multiplier.
    pub fn set_cpu_factor(&self, factor: f64) {
        self.cpu_factor.set(factor.max(0.0));
    }

    /// Current QP generation; QPs created against an older generation
    /// are in the error state.
    pub fn qp_epoch(&self) -> u64 {
        self.qp_epoch.get()
    }

    /// Transitions every QP attached to this machine to the error
    /// state.
    pub fn bump_qp_epoch(&self) {
        self.qp_epoch.set(self.qp_epoch.get() + 1);
    }

    /// Probability that a READ of this machine's memory observes a torn
    /// image: the fetch completes mid-write and returns a spliced
    /// old/new buffer (0 outside torn-DMA fault windows).
    pub fn torn_dma(&self) -> f64 {
        self.torn_dma.get()
    }

    /// Opens/closes a torn-DMA window.
    pub fn set_torn_dma(&self, p: f64) {
        self.torn_dma.set(p.clamp(0.0, 1.0));
    }

    /// Probability that a READ of this machine's memory returns an image
    /// with one flipped bit (0 outside bit-flip fault windows).
    pub fn bitflip(&self) -> f64 {
        self.bitflip.get()
    }

    /// Opens/closes a memory bit-flip window.
    pub fn set_bitflip(&self, p: f64) {
        self.bitflip.set(p.clamp(0.0, 1.0));
    }

    /// Mean added wire latency, in nanoseconds, per one-way traversal
    /// touching this machine (0 outside slow-link fault windows). The
    /// QP layer jitters the actual per-leg extra around this mean.
    pub fn wire_lag_ns(&self) -> u64 {
        self.wire_lag.get()
    }

    /// Opens/closes a slow-link window: every wire leg touching this
    /// machine pays roughly `mean_ns` extra, jittered, without any
    /// error completion — the canonical gray-failure link.
    pub fn set_wire_lag(&self, mean_ns: u64) {
        self.wire_lag.set(mean_ns);
    }

    /// Whether traffic from this machine toward machine `dst` is
    /// currently dropped by an asymmetric partition.
    pub fn blocks_to(&self, dst: usize) -> bool {
        debug_assert!(dst < 64, "partition mask holds 64 machines");
        self.blocked_out.get() & (1u64 << dst) != 0
    }

    /// Cuts the directed link from this machine toward `dst` (the
    /// reverse direction is governed by `dst`'s own mask).
    pub fn block_to(&self, dst: usize) {
        assert!(dst < 64, "partition mask holds 64 machines");
        self.blocked_out.set(self.blocked_out.get() | (1u64 << dst));
    }

    /// Heals the directed link from this machine toward `dst`.
    pub fn unblock_to(&self, dst: usize) {
        assert!(dst < 64, "partition mask holds 64 machines");
        self.blocked_out
            .set(self.blocked_out.get() & !(1u64 << dst));
    }
}

/// Cluster-wide fabric fault state shared by every QP.
#[derive(Debug)]
pub struct FabricFaults {
    link_factor: Cell<f64>,
}

impl Default for FabricFaults {
    fn default() -> Self {
        FabricFaults {
            link_factor: Cell::new(1.0),
        }
    }
}

impl FabricFaults {
    /// Multiplier on wire propagation delay (1.0 = healthy).
    pub fn link_factor(&self) -> f64 {
        self.link_factor.get()
    }

    /// Sets the link-degradation multiplier.
    pub fn set_link_factor(&self, factor: f64) {
        self.link_factor.set(factor.max(0.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_healthy() {
        let m = MachineFaults::default();
        assert!(!m.is_crashed());
        assert_eq!(m.extra_loss(), 0.0);
        assert_eq!(m.cpu_factor(), 1.0);
        assert_eq!(m.qp_epoch(), 0);
        assert_eq!(m.torn_dma(), 0.0);
        assert_eq!(m.bitflip(), 0.0);
        assert_eq!(m.wire_lag_ns(), 0);
        assert!(!m.blocks_to(0));
        assert_eq!(FabricFaults::default().link_factor(), 1.0);
    }

    #[test]
    fn partition_mask_is_directional_and_reversible() {
        let m = MachineFaults::default();
        m.block_to(3);
        assert!(m.blocks_to(3));
        assert!(!m.blocks_to(0), "other destinations unaffected");
        m.block_to(0);
        assert!(m.blocks_to(0) && m.blocks_to(3));
        m.unblock_to(3);
        assert!(!m.blocks_to(3));
        assert!(m.blocks_to(0), "unblock only heals one link");
    }

    #[test]
    fn integrity_fault_probabilities_are_clamped() {
        let m = MachineFaults::default();
        m.set_torn_dma(2.0);
        assert_eq!(m.torn_dma(), 1.0);
        m.set_bitflip(-1.0);
        assert_eq!(m.bitflip(), 0.0);
    }

    #[test]
    fn loss_is_clamped_to_probability_range() {
        let m = MachineFaults::default();
        m.set_extra_loss(1.5);
        assert_eq!(m.extra_loss(), 1.0);
        m.set_extra_loss(-0.5);
        assert_eq!(m.extra_loss(), 0.0);
    }

    #[test]
    fn qp_epoch_is_monotone() {
        let m = MachineFaults::default();
        m.bump_qp_epoch();
        m.bump_qp_epoch();
        assert_eq!(m.qp_epoch(), 2);
    }
}
