//! Asynchronous (posted) verbs and doorbell batching.
//!
//! The paper's measurements deliberately issue one synchronous op at a
//! time ("batching the requests or issuing several RDMA operations
//! without waiting for the notifications of their completion can improve
//! the performance. However, these optimizations are not always
//! applicable and are out of this paper's topic", §2.2). This module
//! supplies exactly those mechanisms so the `ablation_pipelining`
//! harness can quantify what the paper set aside:
//!
//! * [`Qp::read_post`] / [`Qp::write_post`] — post an op and get a
//!   [`Completion`] back immediately; the thread pays only the software
//!   issue cost and may keep more ops in flight.
//! * [`Qp::post_read_batch`] — doorbell batching: `k` ops posted with a
//!   *single* issue cost (one doorbell ring), as in Kalia et al.'s
//!   guidelines.
//!
//! Posted ops still serialize on the NIC engines and move real bytes at
//! the same instants as their synchronous counterparts.

use std::cell::Cell;
use std::rc::Rc;

use rfp_simnet::Signal;

use crate::fault::VerbError;
use crate::machine::ThreadCtx;
use crate::mem::MemRegion;
use crate::qp::{FlightReport, Qp};

/// Handle to an in-flight posted operation.
///
/// Await it with [`Completion::wait`] (busy-polling, like a CQ spin) or
/// [`Completion::wait_idle`]; dropping it without waiting is allowed
/// (an unsignaled op whose completion is never consumed).
pub struct Completion {
    done: Signal,
    error: Rc<Cell<Option<VerbError>>>,
}

impl Completion {
    fn new() -> (Completion, FlightReport) {
        let done = Signal::new();
        let error = Rc::new(Cell::new(None));
        (
            Completion {
                done: done.clone(),
                error: Rc::clone(&error),
            },
            FlightReport { done, error },
        )
    }

    /// Whether the op has already completed.
    pub fn is_done(&self) -> bool {
        self.done.is_fired()
    }

    /// The completion-with-error a real CQ would report, if the op
    /// failed under an injected fault. Meaningful once [`is_done`]
    /// (healthy clusters always complete `None`).
    ///
    /// [`is_done`]: Completion::is_done
    pub fn error(&self) -> Option<VerbError> {
        self.error.get()
    }

    /// Busy-polls until the op completes (CQ spinning: the wait is CPU
    /// time).
    pub async fn wait(&self, thread: &ThreadCtx) {
        thread.busy_wait(self.done.wait()).await;
    }

    /// Blocks until the op completes without accruing CPU time.
    pub async fn wait_idle(&self, thread: &ThreadCtx) {
        thread.idle_wait(self.done.wait()).await;
    }
}

impl Qp {
    /// Posts a one-sided READ and returns immediately after the software
    /// issue cost; the returned [`Completion`] fires when the data has
    /// landed locally.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Qp::read`].
    pub async fn read_post(
        self: &Rc<Self>,
        thread: &ThreadCtx,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
    ) -> Completion {
        self.assert_read_allowed(thread, local, local_off, remote, remote_off, len);
        let issue = self.local().nic().profile().issue_cpu;
        thread.busy(issue).await;
        let (completion, report) = Completion::new();
        self.spawn_read_flight(local, local_off, remote, remote_off, len, report);
        completion
    }

    /// Doorbell batching: posts `entries` READs paying the issue cost
    /// **once**, returning one completion per entry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any entry fails [`Qp::read`]'s
    /// conditions.
    #[allow(clippy::type_complexity)]
    pub async fn post_read_batch(
        self: &Rc<Self>,
        thread: &ThreadCtx,
        entries: &[(Rc<MemRegion>, usize, Rc<MemRegion>, usize, usize)],
    ) -> Vec<Completion> {
        assert!(!entries.is_empty(), "empty doorbell batch");
        for (local, local_off, remote, remote_off, len) in entries {
            self.assert_read_allowed(thread, local, *local_off, remote, *remote_off, *len);
        }
        // One doorbell ring for the whole chain.
        let issue = self.local().nic().profile().issue_cpu;
        thread.busy(issue).await;
        entries
            .iter()
            .map(|(local, local_off, remote, remote_off, len)| {
                let (completion, report) = Completion::new();
                self.spawn_read_flight(local, *local_off, remote, *remote_off, *len, report);
                completion
            })
            .collect()
    }

    /// Posts a one-sided WRITE; the [`Completion`] fires when the ACK
    /// returns (RC) or the op left the NIC (UC).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Qp::write`].
    pub async fn write_post(
        self: &Rc<Self>,
        thread: &ThreadCtx,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
    ) -> Completion {
        let issue = self.local().nic().profile().issue_cpu;
        thread.busy(issue).await;
        let (completion, report) = Completion::new();
        self.spawn_write_flight(local, local_off, remote, remote_off, len, report);
        completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::profile::ClusterProfile;
    use rfp_simnet::{SimSpan, Simulation};
    use std::cell::Cell;

    #[test]
    fn posted_read_moves_bytes_and_completes() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let local = cm.alloc_mr(64);
        let remote = sm.alloc_mr(64);
        remote.write_local(0, b"posted!!");
        let qp = cluster.qp(0, 1);
        let t = cm.thread("c");
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        let l = Rc::clone(&local);
        sim.spawn(async move {
            let c = qp.read_post(&t, &l, 0, &remote, 0, 8).await;
            assert!(!c.is_done(), "completion must be pending right after post");
            c.wait(&t).await;
            assert_eq!(&l.read_local(0, 8), b"posted!!");
            d.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn pipelined_reads_overlap_in_flight() {
        // Four posted reads complete in roughly the time the engine
        // needs to serve four ops — not four full round trips.
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let local = cm.alloc_mr(512);
        let remote = sm.alloc_mr(512);
        let qp = cluster.qp(0, 1);
        let t = cm.thread("c");
        let pipelined_ns = Rc::new(Cell::new(0u64));
        let out = Rc::clone(&pipelined_ns);
        let h = sim.handle();
        sim.spawn(async move {
            let t0 = h.now();
            let mut completions = Vec::new();
            for i in 0..4 {
                completions.push(qp.read_post(&t, &local, i * 64, &remote, i * 64, 32).await);
            }
            for c in completions {
                c.wait(&t).await;
            }
            out.set((h.now() - t0).as_nanos());
        });
        sim.run();
        // Sync: 4 × 1513ns = 6052. Pipelined: 1 RTT + 3 extra engine
        // slots ≈ 1513 + 3·474 ≈ 2.9µs.
        assert!(
            pipelined_ns.get() < 3_600,
            "pipelining should overlap round trips: {}ns",
            pipelined_ns.get()
        );
    }

    #[test]
    fn doorbell_batch_pays_issue_once() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let local = cm.alloc_mr(512);
        let remote = sm.alloc_mr(512);
        let qp = cluster.qp(0, 1);
        let t = cm.thread("c");
        let batched = Rc::new(Cell::new(0u64));
        let out = Rc::clone(&batched);
        let h = sim.handle();
        sim.spawn(async move {
            let entries: Vec<_> = (0..4usize)
                .map(|i| (Rc::clone(&local), i * 64, Rc::clone(&remote), i * 64, 32))
                .collect();
            let t0 = h.now();
            let completions = qp.post_read_batch(&t, &entries).await;
            // Posting cost: exactly one issue_cpu (200ns).
            assert_eq!((h.now() - t0).as_nanos(), 200);
            for c in completions {
                c.wait(&t).await;
            }
            out.set((h.now() - t0).as_nanos());
        });
        sim.run();
        assert!(batched.get() < 3_400, "{}ns", batched.get());
    }

    #[test]
    fn posted_write_lands_after_completion() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let local = cm.alloc_mr(64);
        let remote = sm.alloc_mr(64);
        local.write_local(0, b"async-wr");
        let qp = cluster.qp(0, 1);
        let t = cm.thread("c");
        let r = Rc::clone(&remote);
        sim.spawn(async move {
            let c = qp.write_post(&t, &local, 0, &r, 0, 8).await;
            c.wait_idle(&t).await;
            assert_eq!(&r.read_local(0, 8), b"async-wr");
        });
        sim.run();
        assert_eq!(&remote.read_local(0, 8), b"async-wr");
    }

    #[test]
    fn posted_read_to_crashed_peer_completes_with_error() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let local = cm.alloc_mr(64);
        let remote = sm.alloc_mr(64);
        remote.write_local(0, b"unreached");
        let qp = cluster.qp(0, 1);
        let t = cm.thread("c");
        sm.faults().set_crashed(true);
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        let l = Rc::clone(&local);
        sim.spawn(async move {
            let c = qp.read_post(&t, &l, 0, &remote, 0, 8).await;
            c.wait(&t).await;
            assert_eq!(c.error(), Some(VerbError::RemoteDown));
            // The NACKed flight never lands bytes locally.
            assert_eq!(l.read_local(0, 8), vec![0; 8]);
            d.set(true);
        });
        sim.run();
        assert!(done.get());
    }

    #[test]
    fn dropped_completion_still_delivers() {
        // Unsignaled usage: drop the completion, the op still happens.
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let local = cm.alloc_mr(64);
        let remote = sm.alloc_mr(64);
        local.write_local(0, b"fire");
        let qp = cluster.qp(0, 1);
        let t = cm.thread("c");
        let h = sim.handle();
        let r = Rc::clone(&remote);
        sim.spawn(async move {
            drop(qp.write_post(&t, &local, 0, &r, 0, 4).await);
            h.sleep(SimSpan::micros(10)).await;
        });
        sim.run();
        assert_eq!(&remote.read_local(0, 4), b"fire");
    }
}
