//! Multi-core server model: per-core run queues, cross-core handoff
//! cost, and per-core idle accounting.
//!
//! The RFP paper's Jakiro design keeps the server CPU in the request
//! path and scales it the way real RPC dataplanes do: N cores, each
//! owning a disjoint key partition (EREW, §4), with connections pinned
//! to the core that owns their keys. This module supplies the three
//! hardware-ish ingredients the serve reactor builds on:
//!
//! * [`RunQueue`] — a per-core queue of ready work with owner-end pops
//!   and thief-end steals, plus depth/steal accounting. A deque, not a
//!   channel: the simulation is cooperatively single-threaded, so
//!   plain `RefCell` interior mutability is enough and every push/pop
//!   is atomic between awaits.
//! * [`Handoff`] — the modeled cost of moving one request between
//!   cores (cache-line migration plus the queue touch). Real numbers
//!   are a few hundred nanoseconds; charging it as *busy* time on the
//!   thief keeps the trade honest — stealing is only a win while the
//!   victim is more backed up than the handoff costs.
//! * [`CoreMeter`] — per-core idle accounting (empty scans, nap time)
//!   complementing [`ThreadCtx`](crate::ThreadCtx) busy/idle clocks,
//!   so a sweep can report how much poll burn each core pays.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use rfp_simnet::SimSpan;

use crate::machine::{Machine, ThreadCtx};

/// Identifies one simulated server core within a machine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Spawns `n` named threads on `machine`, one per simulated core
/// (`<prefix>0` .. `<prefix>{n-1}`). Purely a naming convention plus a
/// loop — each core is an ordinary [`ThreadCtx`] with its own busy
/// clock, which is what per-core utilisation reporting reads.
pub fn core_threads(machine: &Rc<Machine>, prefix: &str, n: usize) -> Vec<Rc<ThreadCtx>> {
    assert!(n > 0, "a server has at least one core");
    (0..n)
        .map(|i| machine.thread(format!("{prefix}{i}")))
        .collect()
}

/// A per-core run queue of ready work.
///
/// The owner pushes admitted work at the back and pops from the front
/// (FIFO — admission order is service order, which the overload loop's
/// shedding-safety invariant relies on). A thief steals from the back:
/// the most recently admitted request is the one least likely to have
/// its cache context warm on the owner, so it is the cheapest to move.
pub struct RunQueue<T> {
    items: RefCell<VecDeque<T>>,
    pushes: Cell<u64>,
    steals: Cell<u64>,
    max_depth: Cell<usize>,
}

impl<T> Default for RunQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RunQueue<T> {
    pub fn new() -> Self {
        RunQueue {
            items: RefCell::new(VecDeque::new()),
            pushes: Cell::new(0),
            steals: Cell::new(0),
            max_depth: Cell::new(0),
        }
    }

    /// Owner end: enqueue newly admitted work.
    pub fn push(&self, item: T) {
        let mut q = self.items.borrow_mut();
        q.push_back(item);
        self.pushes.set(self.pushes.get() + 1);
        self.max_depth.set(self.max_depth.get().max(q.len()));
    }

    /// Owner end: dequeue in admission order.
    pub fn pop(&self) -> Option<T> {
        self.items.borrow_mut().pop_front()
    }

    /// Thief end: take the most recently admitted item, counting the
    /// steal. Returns `None` when the queue is empty.
    pub fn steal(&self) -> Option<T> {
        let item = self.items.borrow_mut().pop_back();
        if item.is_some() {
            self.steals.set(self.steals.get() + 1);
        }
        item
    }

    pub fn len(&self) -> usize {
        self.items.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.borrow().is_empty()
    }

    /// Clears the queue (a crashed core's half-done scan dies with it).
    pub fn clear(&self) {
        self.items.borrow_mut().clear();
    }

    /// Total items ever pushed.
    pub fn pushes(&self) -> u64 {
        self.pushes.get()
    }

    /// Total items taken from the thief end.
    pub fn steals(&self) -> u64 {
        self.steals.get()
    }

    /// High-water queue depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth.get()
    }
}

/// The modeled cost of moving one request across cores.
///
/// Charged as *busy* time on the thief's core per stolen request —
/// the cache-line migration, the remote-queue touch, and the handler
/// state pulled cold. Tracks how many handoffs happened and the total
/// simulated time they burned.
pub struct Handoff {
    cost: SimSpan,
    count: Cell<u64>,
    total_ns: Cell<u64>,
}

impl Handoff {
    pub fn new(cost: SimSpan) -> Self {
        Handoff {
            cost,
            count: Cell::new(0),
            total_ns: Cell::new(0),
        }
    }

    /// The per-request handoff cost.
    pub fn cost(&self) -> SimSpan {
        self.cost
    }

    /// Charges one handoff to `thief` (busy time) and counts it.
    pub async fn charge(&self, thief: &ThreadCtx) {
        self.count.set(self.count.get() + 1);
        self.total_ns
            .set(self.total_ns.get() + self.cost.as_nanos());
        if !self.cost.is_zero() {
            thief.busy(self.cost).await;
        }
    }

    /// Handoffs charged so far.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Total simulated nanoseconds burned on handoffs.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.get()
    }

    /// Zeroes the accounting (start of a measurement window).
    pub fn reset(&self) {
        self.count.set(0);
        self.total_ns.set(0);
    }
}

/// Per-core idle accounting: how often a core's scan came up empty and
/// how long it napped, alongside the work it did serve.
#[derive(Default)]
pub struct CoreMeter {
    served: Cell<u64>,
    empty_scans: Cell<u64>,
    nap_ns: Cell<u64>,
}

impl CoreMeter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn note_served(&self, n: u64) {
        self.served.set(self.served.get() + n);
    }

    pub fn note_empty_scan(&self) {
        self.empty_scans.set(self.empty_scans.get() + 1);
    }

    pub fn note_nap(&self, nap: SimSpan) {
        self.nap_ns.set(self.nap_ns.get() + nap.as_nanos());
    }

    pub fn served(&self) -> u64 {
        self.served.get()
    }

    pub fn empty_scans(&self) -> u64 {
        self.empty_scans.get()
    }

    pub fn nap_ns(&self) -> u64 {
        self.nap_ns.get()
    }

    /// Zeroes the accounting (start of a measurement window).
    pub fn reset(&self) {
        self.served.set(0);
        self.empty_scans.set(0);
        self.nap_ns.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_queue_fifo_pop_lifo_steal() {
        let q = RunQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.max_depth(), 3);
        assert_eq!(q.steal(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal(), None);
        assert_eq!(q.pushes(), 3);
        assert_eq!(q.steals(), 1);
    }

    #[test]
    fn run_queue_clear_drops_backlog() {
        let q = RunQueue::new();
        q.push("a");
        q.push("b");
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pushes(), 2);
    }

    #[test]
    fn core_meter_accumulates() {
        let m = CoreMeter::new();
        m.note_served(3);
        m.note_empty_scan();
        m.note_nap(SimSpan::nanos(500));
        m.note_nap(SimSpan::nanos(250));
        assert_eq!(m.served(), 3);
        assert_eq!(m.empty_scans(), 1);
        assert_eq!(m.nap_ns(), 750);
    }
}
