//! The NIC model: two asymmetric engines plus operation accounting.

use std::cell::Cell;
use std::rc::Rc;

use rfp_simnet::{FifoServer, SimHandle, SimSpan};

use crate::profile::NicProfile;

/// Cumulative per-NIC operation counters.
///
/// `inbound_ops` is the number the paper's §4.3 round-trip accounting is
/// based on (e.g. Jakiro's 2.005 in-bound ops per GET at the server).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// One-sided ops served by the in-bound engine.
    pub inbound_ops: u64,
    /// One-sided ops issued through the out-bound engine.
    pub outbound_ops: u64,
    /// Payload bytes received by one-sided ops (writes in, reads out).
    pub inbound_bytes: u64,
    /// Payload bytes sent by one-sided ops.
    pub outbound_bytes: u64,
}

/// One simulated RNIC with separate in-bound and out-bound pipelines.
pub struct Nic {
    profile: NicProfile,
    inbound: FifoServer,
    outbound: FifoServer,
    /// Threads currently inside an issuing verb on this NIC; drives the
    /// out-bound contention multiplier.
    active_issuers: Cell<usize>,
    inbound_ops: Cell<u64>,
    outbound_ops: Cell<u64>,
    inbound_bytes: Cell<u64>,
    outbound_bytes: Cell<u64>,
}

impl Nic {
    pub(crate) fn new(handle: SimHandle, profile: NicProfile) -> Self {
        Nic {
            profile,
            inbound: FifoServer::new(handle.clone()),
            outbound: FifoServer::new(handle),
            active_issuers: Cell::new(0),
            inbound_ops: Cell::new(0),
            outbound_ops: Cell::new(0),
            inbound_bytes: Cell::new(0),
            outbound_bytes: Cell::new(0),
        }
    }

    /// The timing model of this NIC.
    pub fn profile(&self) -> &NicProfile {
        &self.profile
    }

    /// Marks a thread as inside an issuing verb; the guard un-marks on
    /// drop. The count feeds the out-bound contention multiplier.
    pub(crate) fn begin_issue(self: &Rc<Self>) -> IssueGuard {
        self.active_issuers.set(self.active_issuers.get() + 1);
        IssueGuard {
            nic: Rc::clone(self),
        }
    }

    /// Current out-bound service-time multiplier given concurrent
    /// issuers.
    pub(crate) fn contention_multiplier(&self) -> f64 {
        self.profile
            .contention_multiplier(self.active_issuers.get())
    }

    /// Occupies the out-bound engine for one op of `bytes`, inflated by
    /// the current contention multiplier; resolves at service completion.
    pub(crate) fn serve_outbound(&self, bytes: usize) -> rfp_simnet::Sleep {
        let base = self.profile.outbound_service(bytes);
        let service =
            SimSpan::from_nanos_f64(base.as_nanos() as f64 * self.contention_multiplier());
        self.outbound_ops.set(self.outbound_ops.get() + 1);
        self.outbound_bytes
            .set(self.outbound_bytes.get() + bytes as u64);
        self.outbound.serve(service)
    }

    /// Occupies the in-bound engine for one op of `bytes`; resolves at
    /// service completion (the instant data lands / leaves).
    pub(crate) fn serve_inbound(&self, bytes: usize) -> rfp_simnet::Sleep {
        self.inbound_ops.set(self.inbound_ops.get() + 1);
        self.inbound_bytes
            .set(self.inbound_bytes.get() + bytes as u64);
        self.inbound.serve(self.profile.inbound_service(bytes))
    }

    /// Occupies the out-bound engine for one two-sided SEND of `bytes`.
    pub(crate) fn serve_twosided_tx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.twosided_service(bytes);
        self.outbound_ops.set(self.outbound_ops.get() + 1);
        self.outbound_bytes
            .set(self.outbound_bytes.get() + bytes as u64);
        self.outbound.serve(service)
    }

    /// Occupies the in-bound engine for one two-sided RECV of `bytes`
    /// at the two-sided (symmetric) cost.
    pub(crate) fn serve_twosided_rx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.twosided_service(bytes);
        self.inbound_ops.set(self.inbound_ops.get() + 1);
        self.inbound_bytes
            .set(self.inbound_bytes.get() + bytes as u64);
        self.inbound.serve(service)
    }

    /// Occupies the out-bound engine for one UD datagram SEND of
    /// `bytes` (cheaper than RC: no connection state, no ACK handling).
    pub(crate) fn serve_ud_tx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.ud_service(bytes);
        self.outbound_ops.set(self.outbound_ops.get() + 1);
        self.outbound_bytes
            .set(self.outbound_bytes.get() + bytes as u64);
        self.outbound.serve(service)
    }

    /// Occupies the in-bound engine for one UD datagram RECV of `bytes`.
    pub(crate) fn serve_ud_rx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.ud_service(bytes);
        self.inbound_ops.set(self.inbound_ops.get() + 1);
        self.inbound_bytes
            .set(self.inbound_bytes.get() + bytes as u64);
        self.inbound.serve(service)
    }

    /// Snapshot of the operation counters.
    pub fn counters(&self) -> NicCounters {
        NicCounters {
            inbound_ops: self.inbound_ops.get(),
            outbound_ops: self.outbound_ops.get(),
            inbound_bytes: self.inbound_bytes.get(),
            outbound_bytes: self.outbound_bytes.get(),
        }
    }

    /// Resets counters and engine statistics (keeps queued work), to
    /// discard warm-up before a measurement window.
    pub fn reset_counters(&self) {
        self.inbound_ops.set(0);
        self.outbound_ops.set(0);
        self.inbound_bytes.set(0);
        self.outbound_bytes.set(0);
        self.inbound.reset_stats();
        self.outbound.reset_stats();
    }

    /// Busy time of the in-bound engine since the last reset (for
    /// utilisation cross-checks in tests).
    pub fn inbound_busy(&self) -> SimSpan {
        self.inbound.busy_time()
    }

    /// Busy time of the out-bound engine since the last reset.
    pub fn outbound_busy(&self) -> SimSpan {
        self.outbound.busy_time()
    }
}

/// RAII guard marking a thread as an active issuer on a NIC.
pub(crate) struct IssueGuard {
    nic: Rc<Nic>,
}

impl Drop for IssueGuard {
    fn drop(&mut self) {
        let n = self.nic.active_issuers.get();
        debug_assert!(n > 0);
        self.nic.active_issuers.set(n - 1);
    }
}
