//! The NIC model: two asymmetric engines plus operation accounting.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rfp_simnet::{
    Counter, FifoServer, FlightRecorder, Gauge, MetricsRegistry, Severity, SimHandle, SimSpan,
};

use crate::profile::NicProfile;

/// Cumulative per-NIC operation counters.
///
/// `inbound_ops` is the number the paper's §4.3 round-trip accounting is
/// based on (e.g. Jakiro's 2.005 in-bound ops per GET at the server).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// One-sided ops served by the in-bound engine.
    pub inbound_ops: u64,
    /// One-sided ops issued through the out-bound engine.
    pub outbound_ops: u64,
    /// Payload bytes received by one-sided ops (writes in, reads out).
    pub inbound_bytes: u64,
    /// Payload bytes sent by one-sided ops.
    pub outbound_bytes: u64,
    /// Unreliable (UC/UD) packets this NIC put on the wire that never
    /// arrived — lost in transit or addressed to a crashed peer.
    pub dropped: u64,
}

/// Gauges kept current by the engines once a registry is attached.
struct NicGauges {
    inbound_backlog_ns: Rc<Gauge>,
    outbound_backlog_ns: Rc<Gauge>,
    inbound_busy_ns: Rc<Gauge>,
    outbound_busy_ns: Rc<Gauge>,
}

/// One simulated RNIC with separate in-bound and out-bound pipelines.
pub struct Nic {
    profile: NicProfile,
    handle: SimHandle,
    inbound: FifoServer,
    outbound: FifoServer,
    /// Threads currently inside an issuing verb on this NIC; drives the
    /// out-bound contention multiplier.
    active_issuers: Cell<usize>,
    inbound_ops: Rc<Counter>,
    outbound_ops: Rc<Counter>,
    inbound_bytes: Rc<Counter>,
    outbound_bytes: Rc<Counter>,
    dropped: Rc<Counter>,
    gauges: RefCell<Option<NicGauges>>,
    /// Flight recorder receiving wire-level loss/retransmit events,
    /// tagged with this NIC's machine index.
    recorder: RefCell<Option<(FlightRecorder, u32)>>,
}

impl Nic {
    pub(crate) fn new(handle: SimHandle, profile: NicProfile) -> Self {
        Nic {
            profile,
            handle: handle.clone(),
            inbound: FifoServer::new(handle.clone()),
            outbound: FifoServer::new(handle),
            active_issuers: Cell::new(0),
            inbound_ops: Rc::new(Counter::new()),
            outbound_ops: Rc::new(Counter::new()),
            inbound_bytes: Rc::new(Counter::new()),
            outbound_bytes: Rc::new(Counter::new()),
            dropped: Rc::new(Counter::new()),
            gauges: RefCell::new(None),
            recorder: RefCell::new(None),
        }
    }

    /// The timing model of this NIC.
    pub fn profile(&self) -> &NicProfile {
        &self.profile
    }

    /// Registers this NIC's instruments under `prefix` (e.g. `nic.0`):
    /// the four op/byte counters plus per-engine backlog and busy-time
    /// gauges, refreshed on every operation the engines accept.
    pub fn attach_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.inbound.ops"), &self.inbound_ops);
        registry.register_counter(&format!("{prefix}.outbound.ops"), &self.outbound_ops);
        registry.register_counter(&format!("{prefix}.inbound.bytes"), &self.inbound_bytes);
        registry.register_counter(&format!("{prefix}.outbound.bytes"), &self.outbound_bytes);
        registry.register_counter(&format!("{prefix}.dropped"), &self.dropped);
        *self.gauges.borrow_mut() = Some(NicGauges {
            inbound_backlog_ns: registry.gauge(&format!("{prefix}.inbound.backlog_ns")),
            outbound_backlog_ns: registry.gauge(&format!("{prefix}.outbound.backlog_ns")),
            inbound_busy_ns: registry.gauge(&format!("{prefix}.inbound.busy_ns")),
            outbound_busy_ns: registry.gauge(&format!("{prefix}.outbound.busy_ns")),
        });
        self.refresh_gauges();
    }

    /// Pushes current engine state into the attached gauges, if any.
    /// Backlog is the service time already committed past `now` — the
    /// analytic queue length of the never-materialised FIFO.
    fn refresh_gauges(&self) {
        if let Some(g) = self.gauges.borrow().as_ref() {
            let now = self.handle.now();
            let backlog =
                |next_free: rfp_simnet::SimTime| next_free.max(now).since(now).as_nanos() as i64;
            g.inbound_backlog_ns.set(backlog(self.inbound.next_free()));
            g.outbound_backlog_ns
                .set(backlog(self.outbound.next_free()));
            g.inbound_busy_ns
                .set(self.inbound.busy_time().as_nanos() as i64);
            g.outbound_busy_ns
                .set(self.outbound.busy_time().as_nanos() as i64);
        }
    }

    /// Marks a thread as inside an issuing verb; the guard un-marks on
    /// drop. The count feeds the out-bound contention multiplier.
    pub(crate) fn begin_issue(self: &Rc<Self>) -> IssueGuard {
        self.active_issuers.set(self.active_issuers.get() + 1);
        IssueGuard {
            nic: Rc::clone(self),
        }
    }

    /// Current out-bound service-time multiplier given concurrent
    /// issuers.
    pub(crate) fn contention_multiplier(&self) -> f64 {
        self.profile
            .contention_multiplier(self.active_issuers.get())
    }

    /// Occupies the out-bound engine for one op of `bytes`, inflated by
    /// the current contention multiplier; resolves at service completion.
    pub(crate) fn serve_outbound(&self, bytes: usize) -> rfp_simnet::Sleep {
        let base = self.profile.outbound_service(bytes);
        let service =
            SimSpan::from_nanos_f64(base.as_nanos() as f64 * self.contention_multiplier());
        self.outbound_ops.incr();
        self.outbound_bytes.add(bytes as u64);
        let sleep = self.outbound.serve(service);
        self.refresh_gauges();
        sleep
    }

    /// Occupies the in-bound engine for one op of `bytes`; resolves at
    /// service completion (the instant data lands / leaves).
    pub(crate) fn serve_inbound(&self, bytes: usize) -> rfp_simnet::Sleep {
        self.inbound_ops.incr();
        self.inbound_bytes.add(bytes as u64);
        let sleep = self.inbound.serve(self.profile.inbound_service(bytes));
        self.refresh_gauges();
        sleep
    }

    /// Occupies the out-bound engine for one two-sided SEND of `bytes`.
    pub(crate) fn serve_twosided_tx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.twosided_service(bytes);
        self.outbound_ops.incr();
        self.outbound_bytes.add(bytes as u64);
        let sleep = self.outbound.serve(service);
        self.refresh_gauges();
        sleep
    }

    /// Occupies the in-bound engine for one two-sided RECV of `bytes`
    /// at the two-sided (symmetric) cost.
    pub(crate) fn serve_twosided_rx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.twosided_service(bytes);
        self.inbound_ops.incr();
        self.inbound_bytes.add(bytes as u64);
        let sleep = self.inbound.serve(service);
        self.refresh_gauges();
        sleep
    }

    /// Occupies the out-bound engine for one UD datagram SEND of
    /// `bytes` (cheaper than RC: no connection state, no ACK handling).
    pub(crate) fn serve_ud_tx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.ud_service(bytes);
        self.outbound_ops.incr();
        self.outbound_bytes.add(bytes as u64);
        let sleep = self.outbound.serve(service);
        self.refresh_gauges();
        sleep
    }

    /// Occupies the in-bound engine for one UD datagram RECV of `bytes`.
    pub(crate) fn serve_ud_rx(&self, bytes: usize) -> rfp_simnet::Sleep {
        let service = self.profile.ud_service(bytes);
        self.inbound_ops.incr();
        self.inbound_bytes.add(bytes as u64);
        let sleep = self.inbound.serve(service);
        self.refresh_gauges();
        sleep
    }

    /// Attaches a flight recorder; wire-level loss and retransmit
    /// events are appended to it, tagged with `machine` (and no
    /// connection — the NIC does not know which connection a packet
    /// belonged to; correlation happens through the time window).
    pub fn attach_recorder(&self, recorder: &FlightRecorder, machine: u32) {
        *self.recorder.borrow_mut() = Some((recorder.clone(), machine));
    }

    fn record_wire(&self, kind: &'static str, severity: Severity, detail: &str) {
        if let Some((rec, machine)) = self.recorder.borrow().as_ref() {
            rec.record(
                self.handle.now(),
                None,
                0,
                severity,
                kind,
                format!("machine {machine}: {detail}"),
            );
        }
    }

    /// Records one unreliable packet that left this NIC but never
    /// arrived.
    pub(crate) fn note_drop(&self) {
        self.dropped.incr();
        self.record_wire("nic.drop", Severity::Warn, "packet lost in transit");
    }

    /// Records one RC retransmission round trip paid during a loss
    /// burst (reliable transport: the op still completes).
    pub(crate) fn note_rc_retransmit(&self) {
        self.record_wire(
            "nic.rc_retransmit",
            Severity::Info,
            "RC retransmit round trip during loss burst",
        );
    }

    /// Snapshot of the operation counters.
    pub fn counters(&self) -> NicCounters {
        NicCounters {
            inbound_ops: self.inbound_ops.get(),
            outbound_ops: self.outbound_ops.get(),
            inbound_bytes: self.inbound_bytes.get(),
            outbound_bytes: self.outbound_bytes.get(),
            dropped: self.dropped.get(),
        }
    }

    /// Resets counters and engine statistics (keeps queued work), to
    /// discard warm-up before a measurement window.
    pub fn reset_counters(&self) {
        self.inbound_ops.reset();
        self.outbound_ops.reset();
        self.inbound_bytes.reset();
        self.outbound_bytes.reset();
        self.dropped.reset();
        self.inbound.reset_stats();
        self.outbound.reset_stats();
        self.refresh_gauges();
    }

    /// Busy time of the in-bound engine since the last reset (for
    /// utilisation cross-checks in tests).
    pub fn inbound_busy(&self) -> SimSpan {
        self.inbound.busy_time()
    }

    /// Busy time of the out-bound engine since the last reset.
    pub fn outbound_busy(&self) -> SimSpan {
        self.outbound.busy_time()
    }
}

/// RAII guard marking a thread as an active issuer on a NIC.
pub(crate) struct IssueGuard {
    nic: Rc<Nic>,
}

impl Drop for IssueGuard {
    fn drop(&mut self) {
        let n = self.nic.active_issuers.get();
        debug_assert!(n > 0);
        self.nic.active_issuers.set(n - 1);
    }
}
