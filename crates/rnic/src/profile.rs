//! Calibrated cost-model parameters for NICs and links.
//!
//! The default profile reproduces the micro-benchmark curves the paper
//! reports for its Mellanox ConnectX-3 (40 Gbps) testbed (§2.2,
//! Figures 3–5): 11.26 MOPS peak in-bound, 2.11 MOPS peak out-bound for
//! small payloads, convergence of both directions at ≈2 KB where line
//! rate becomes the bottleneck.

use rfp_simnet::SimSpan;

/// Per-NIC timing model.
#[derive(Clone, Debug)]
pub struct NicProfile {
    /// Minimum in-bound engine service time per one-sided op
    /// (88.8 ns ⇒ 11.26 MOPS small-op peak).
    pub inbound_min: SimSpan,
    /// Minimum out-bound engine service time per one-sided op
    /// (474 ns ⇒ 2.11 MOPS small-op peak).
    pub outbound_min: SimSpan,
    /// Minimum per-op service time for two-sided SEND/RECV on **both**
    /// sides — the paper notes two-sided ops show no asymmetry.
    pub twosided_min: SimSpan,
    /// Minimum per-op service time for **UD** datagram SEND/RECV. UD
    /// skips connection state and ACKs, which is how HERD/FaSST push
    /// message rates past RC (paper §5) — at the price of reliability.
    pub ud_min: SimSpan,
    /// Probability that an unreliable (UC/UD) op is silently lost in
    /// transit. Zero by default; loss-handling tests and the HERD-style
    /// comparator's retransmission path raise it.
    pub unreliable_loss: f64,
    /// Payload bandwidth of the port in bytes/second (40 Gbps ⇒ 5 GB/s).
    pub bandwidth: f64,
    /// Software cost on the issuing thread per verb (descriptor setup,
    /// doorbell, completion handling).
    pub issue_cpu: SimSpan,
    /// Extra turnaround cost of a READ over a WRITE at the issuing NIC;
    /// the paper observes single WRITEs are cheaper than single READs
    /// (§4.4.2, also seen by HERD and RDMA-PVFS).
    pub read_turnaround: SimSpan,
    /// Number of concurrently issuing threads the out-bound path absorbs
    /// before software/hardware contention kicks in (the paper saturates
    /// out-bound with 4 threads, Figure 3).
    pub contention_free_issuers: usize,
    /// Linear inflation of out-bound service per issuer beyond the free
    /// count: `mult = 1 + factor · excess`. Reproduces the decline of
    /// out-bound IOPS with many threads (Figures 3, 4, 12).
    pub contention_factor: f64,
}

impl NicProfile {
    /// The paper's testbed NIC: ConnectX-3, 40 Gbps.
    pub fn connectx3_40g() -> Self {
        NicProfile {
            inbound_min: SimSpan::nanos(89),   // ≈ 1 / 11.26 MOPS
            outbound_min: SimSpan::nanos(474), // ≈ 1 / 2.11 MOPS
            twosided_min: SimSpan::nanos(474),
            ud_min: SimSpan::nanos(300),
            unreliable_loss: 0.0,
            bandwidth: 5.0e9, // 40 Gbps payload rate
            issue_cpu: SimSpan::nanos(200),
            read_turnaround: SimSpan::nanos(150),
            contention_free_issuers: 4,
            contention_factor: 0.08,
        }
    }

    /// The 20 Gbps NIC variant used for the Pilaf comparison (Figure 11
    /// replays Jakiro on a cluster of 20 Gbps Mellanox NICs to match the
    /// environment Pilaf reported numbers on).
    pub fn connectx_20g() -> Self {
        NicProfile {
            bandwidth: 2.5e9,
            ..Self::connectx3_40g()
        }
    }

    /// A previous-generation NIC (ConnectX-2 class): slower in every
    /// dimension, same asymmetric structure — the paper repeats its
    /// §2.2 experiment on ConnectX-2/-3/-4 and sees the asymmetry on
    /// all of them.
    pub fn connectx2_40g() -> Self {
        NicProfile {
            inbound_min: SimSpan::nanos(125),  // ≈ 8 MOPS
            outbound_min: SimSpan::nanos(610), // ≈ 1.6 MOPS
            twosided_min: SimSpan::nanos(610),
            ud_min: SimSpan::nanos(400),
            bandwidth: 3.2e9,
            ..Self::connectx3_40g()
        }
    }

    /// A next-generation NIC (ConnectX-4 class, 100 Gbps): faster in
    /// every dimension, same asymmetric structure.
    pub fn connectx4_100g() -> Self {
        NicProfile {
            inbound_min: SimSpan::nanos(60),   // ≈ 16.7 MOPS
            outbound_min: SimSpan::nanos(280), // ≈ 3.6 MOPS
            twosided_min: SimSpan::nanos(280),
            ud_min: SimSpan::nanos(180),
            bandwidth: 12.0e9,
            ..Self::connectx3_40g()
        }
    }

    /// In-bound engine service time for a one-sided op carrying `bytes`.
    ///
    /// `max(inbound_min, bytes / bandwidth)`: flat for small payloads
    /// (startup-dominated — the paper's `[1, L)` region of Figure 5),
    /// line-rate-bound beyond the knee.
    pub fn inbound_service(&self, bytes: usize) -> SimSpan {
        self.inbound_min
            .max(SimSpan::from_nanos_f64(bytes as f64 / self.bandwidth * 1e9))
    }

    /// Out-bound engine service time for a one-sided op carrying `bytes`,
    /// before contention inflation.
    pub fn outbound_service(&self, bytes: usize) -> SimSpan {
        self.outbound_min
            .max(SimSpan::from_nanos_f64(bytes as f64 / self.bandwidth * 1e9))
    }

    /// Two-sided per-op service time (same on both sides).
    pub fn twosided_service(&self, bytes: usize) -> SimSpan {
        self.twosided_min
            .max(SimSpan::from_nanos_f64(bytes as f64 / self.bandwidth * 1e9))
    }

    /// UD datagram per-op service time (same on both sides).
    pub fn ud_service(&self, bytes: usize) -> SimSpan {
        self.ud_min
            .max(SimSpan::from_nanos_f64(bytes as f64 / self.bandwidth * 1e9))
    }

    /// Out-bound contention multiplier for `issuers` concurrently issuing
    /// threads.
    pub fn contention_multiplier(&self, issuers: usize) -> f64 {
        let excess = issuers.saturating_sub(self.contention_free_issuers);
        1.0 + self.contention_factor * excess as f64
    }

    /// Payload size at which in-bound IOPS stops being flat (the model's
    /// analogue of the paper's `L`).
    pub fn inbound_knee_bytes(&self) -> usize {
        (self.inbound_min.as_nanos() as f64 / 1e9 * self.bandwidth) as usize
    }
}

/// Link/switch timing between two machines.
#[derive(Clone, Debug)]
pub struct LinkProfile {
    /// One-way propagation NIC → switch → NIC.
    pub propagation: SimSpan,
}

impl LinkProfile {
    /// The paper's single 18-port InfiniScale-IV switch.
    pub fn infiniscale() -> Self {
        LinkProfile {
            propagation: SimSpan::nanos(300),
        }
    }
}

/// Complete cluster timing model.
#[derive(Clone, Debug)]
pub struct ClusterProfile {
    /// NIC model applied to every machine.
    pub nic: NicProfile,
    /// Inter-machine link model.
    pub link: LinkProfile,
}

impl ClusterProfile {
    /// The paper's testbed: 40 Gbps ConnectX-3 + InfiniScale-IV switch.
    pub fn paper_testbed() -> Self {
        ClusterProfile {
            nic: NicProfile::connectx3_40g(),
            link: LinkProfile::infiniscale(),
        }
    }

    /// The 20 Gbps variant for the Pilaf comparison (Figure 11).
    pub fn pilaf_testbed() -> Self {
        ClusterProfile {
            nic: NicProfile::connectx_20g(),
            link: LinkProfile::infiniscale(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_op_peaks_match_paper() {
        let p = NicProfile::connectx3_40g();
        let inbound_mops = 1e3 / p.inbound_service(32).as_nanos() as f64;
        let outbound_mops = 1e3 / p.outbound_service(32).as_nanos() as f64;
        assert!((inbound_mops - 11.26).abs() < 0.1, "{inbound_mops}");
        assert!((outbound_mops - 2.11).abs() < 0.01, "{outbound_mops}");
    }

    #[test]
    fn asymmetry_is_about_5x() {
        let p = NicProfile::connectx3_40g();
        let ratio =
            p.outbound_service(32).as_nanos() as f64 / p.inbound_service(32).as_nanos() as f64;
        assert!((4.5..6.0).contains(&ratio), "asymmetry ratio {ratio}");
    }

    #[test]
    fn directions_converge_beyond_2kb() {
        let p = NicProfile::connectx3_40g();
        // At 4 KB both directions are line-rate-bound and equal.
        assert_eq!(p.inbound_service(4096), p.outbound_service(4096));
        // At 32 B they differ by the asymmetry.
        assert!(p.inbound_service(32) < p.outbound_service(32));
        // Crossover where out-bound stops being flat: ≈ 2.4 KB.
        let cross = (p.outbound_min.as_nanos() as f64 / 1e9 * p.bandwidth) as usize;
        assert!((2_000..3_000).contains(&cross), "crossover {cross}");
    }

    #[test]
    fn contention_multiplier_kicks_in_past_threshold() {
        let p = NicProfile::connectx3_40g();
        assert_eq!(p.contention_multiplier(1), 1.0);
        assert_eq!(p.contention_multiplier(4), 1.0);
        assert!(p.contention_multiplier(5) > 1.0);
        assert!(p.contention_multiplier(16) > p.contention_multiplier(8));
    }

    #[test]
    fn inbound_knee_is_a_few_hundred_bytes() {
        let p = NicProfile::connectx3_40g();
        let knee = p.inbound_knee_bytes();
        assert!(
            (256..=512).contains(&knee),
            "knee {knee} should be in the paper's [L, H] ballpark"
        );
    }

    #[test]
    fn asymmetry_holds_across_nic_generations() {
        // The paper: "we repeat this experiment with all the three kinds
        // of RNICs we have (ConnectX-2, ConnectX-3, and ConnectX-4), and
        // the asymmetry appears on all these different versions".
        for p in [
            NicProfile::connectx2_40g(),
            NicProfile::connectx3_40g(),
            NicProfile::connectx4_100g(),
        ] {
            let ratio =
                p.outbound_service(32).as_nanos() as f64 / p.inbound_service(32).as_nanos() as f64;
            assert!((4.0..6.0).contains(&ratio), "asymmetry ratio {ratio}");
        }
        // Generations are ordered in absolute speed.
        let (c2, c3, c4) = (
            NicProfile::connectx2_40g(),
            NicProfile::connectx3_40g(),
            NicProfile::connectx4_100g(),
        );
        assert!(c2.inbound_service(32) > c3.inbound_service(32));
        assert!(c3.inbound_service(32) > c4.inbound_service(32));
    }

    #[test]
    fn ud_is_cheaper_than_rc_twosided() {
        let p = NicProfile::connectx3_40g();
        assert!(p.ud_service(32) < p.twosided_service(32));
    }

    #[test]
    fn twenty_gig_variant_halves_bandwidth() {
        let p40 = NicProfile::connectx3_40g();
        let p20 = NicProfile::connectx_20g();
        assert_eq!(p20.bandwidth, p40.bandwidth / 2.0);
        // Small-op behaviour identical; large transfers twice as slow.
        assert_eq!(p20.inbound_service(32), p40.inbound_service(32));
        let halved = p20.inbound_service(8192).as_nanos() as i64;
        let doubled = 2 * p40.inbound_service(8192).as_nanos() as i64;
        assert!((halved - doubled).abs() <= 1, "{halved} vs {doubled}");
    }
}
