//! Registered memory regions.
//!
//! A [`MemRegion`] models a pinned, RNIC-registered buffer. Remote verbs
//! copy real bytes in and out of it, and local code (the owning server or
//! client) reads/writes it directly in zero simulated time — matching
//! real RDMA, where local access to registered memory is plain memory
//! access.
//!
//! Regions also support *write watchers*: futures that complete when a
//! remote WRITE lands in a watched byte range. Higher layers use this
//! both as a cheap stand-in for memory polling loops (the wake instant
//! equals the instant a poll would first observe the data) and for the
//! blocking wait of server-reply mode.

use std::cell::RefCell;
use std::future::Future;
use std::ops::Range;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::machine::MachineId;

/// Identifier of a memory region within one cluster (its "rkey").
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MrId(pub u64);

/// A registered memory region owned by one machine.
pub struct MemRegion {
    id: MrId,
    owner: MachineId,
    bytes: RefCell<Vec<u8>>,
    watchers: RefCell<Vec<Watcher>>,
    /// Monotone count of remote writes applied, used by watchers to
    /// detect writes that landed between polls.
    write_epoch: RefCell<u64>,
    /// Pre-write image captured by [`MemRegion::snapshot_history`]; the
    /// torn-DMA fault splices concurrent READs from it. `None` unless a
    /// writer explicitly snapshots (healthy runs never allocate it).
    history: RefCell<Option<Vec<u8>>>,
}

struct Watcher {
    range: Range<usize>,
    waker: Waker,
}

impl MemRegion {
    pub(crate) fn new(id: MrId, owner: MachineId, len: usize) -> Rc<Self> {
        Rc::new(MemRegion {
            id,
            owner,
            bytes: RefCell::new(vec![0; len]),
            watchers: RefCell::new(Vec::new()),
            write_epoch: RefCell::new(0),
            history: RefCell::new(None),
        })
    }

    /// This region's id (the rkey a client would present).
    pub fn id(&self) -> MrId {
        self.id
    }

    /// The machine whose NIC serves remote access to this region.
    pub fn owner(&self) -> MachineId {
        self.owner
    }

    /// Registered length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.borrow().len()
    }

    /// Whether the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies `src` into the region at `offset` (local CPU store).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the registered length.
    pub fn write_local(&self, offset: usize, src: &[u8]) {
        let mut b = self.bytes.borrow_mut();
        let end = offset
            .checked_add(src.len())
            .filter(|&e| e <= b.len())
            .unwrap_or_else(|| panic!("write past end of MR {:?}", self.id));
        b[offset..end].copy_from_slice(src);
    }

    /// Copies `len` bytes starting at `offset` out of the region (local
    /// CPU load).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the registered length.
    pub fn read_local(&self, offset: usize, len: usize) -> Vec<u8> {
        let b = self.bytes.borrow();
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= b.len())
            .unwrap_or_else(|| panic!("read past end of MR {:?}", self.id));
        b[offset..end].to_vec()
    }

    /// Reads into a caller-provided buffer without allocating.
    pub fn read_local_into(&self, offset: usize, dst: &mut [u8]) {
        let b = self.bytes.borrow();
        let end = offset
            .checked_add(dst.len())
            .filter(|&e| e <= b.len())
            .unwrap_or_else(|| panic!("read past end of MR {:?}", self.id));
        dst.copy_from_slice(&b[offset..end]);
    }

    /// Borrow the raw bytes for in-place inspection (local access only).
    pub fn with_bytes<T>(&self, f: impl FnOnce(&[u8]) -> T) -> T {
        f(&self.bytes.borrow())
    }

    /// Borrow the raw bytes mutably for in-place update (local access
    /// only).
    pub fn with_bytes_mut<T>(&self, f: impl FnOnce(&mut [u8]) -> T) -> T {
        f(&mut self.bytes.borrow_mut())
    }

    /// Zero-fills the region (cold-restart wipe). Not a remote write:
    /// the write epoch does not advance and watchers are not woken.
    pub(crate) fn zero(&self) {
        self.bytes.borrow_mut().fill(0);
        *self.history.borrow_mut() = None;
    }

    /// Records the region's current contents as its pre-write image.
    ///
    /// A writer about to overwrite the region calls this so the torn-DMA
    /// fault can splice a concurrent READ from the bytes the write is
    /// replacing. Fault-injection support: overwrites any prior
    /// snapshot, and costs nothing unless called.
    pub fn snapshot_history(&self) {
        let current = self.bytes.borrow().clone();
        *self.history.borrow_mut() = Some(current);
    }

    /// Borrow the pre-write image captured by
    /// [`snapshot_history`](MemRegion::snapshot_history), if any.
    pub fn with_history<T>(&self, f: impl FnOnce(Option<&[u8]>) -> T) -> T {
        f(self.history.borrow().as_deref())
    }

    /// Applies a *remote* write (called by the NIC at the instant the
    /// in-bound engine finishes the op) and wakes overlapping watchers.
    pub(crate) fn apply_remote_write(&self, offset: usize, src: &[u8]) {
        self.write_local(offset, src);
        *self.write_epoch.borrow_mut() += 1;
        let range = offset..offset + src.len();
        let mut watchers = self.watchers.borrow_mut();
        let mut i = 0;
        while i < watchers.len() {
            if ranges_overlap(&watchers[i].range, &range) {
                let w = watchers.swap_remove(i);
                w.waker.wake();
            } else {
                i += 1;
            }
        }
    }

    /// Current remote-write epoch (increments once per remote WRITE).
    pub fn write_epoch(&self) -> u64 {
        *self.write_epoch.borrow()
    }

    /// Completes the next time a remote WRITE touches `range`.
    ///
    /// The wait observes only writes that land **after** the call, so
    /// callers should check memory contents first and only wait if the
    /// expected data has not yet arrived (see
    /// [`ThreadCtx::idle_wait`](crate::ThreadCtx) users).
    pub fn wait_remote_write(self: &Rc<Self>, range: Range<usize>) -> WriteWait {
        WriteWait {
            mr: Rc::clone(self),
            range,
            epoch_at_start: self.write_epoch(),
        }
    }
}

fn ranges_overlap(a: &Range<usize>, b: &Range<usize>) -> bool {
    a.start < b.end && b.start < a.end
}

/// Future returned by [`MemRegion::wait_remote_write`].
pub struct WriteWait {
    mr: Rc<MemRegion>,
    range: Range<usize>,
    epoch_at_start: u64,
}

impl Future for WriteWait {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        // Any write since the wait began may have been ours; conservative
        // wake-up on epoch advance keeps the future race-free (a write
        // landing between creation and first poll is not missed).
        if self.mr.write_epoch() != self.epoch_at_start {
            return Poll::Ready(());
        }
        self.mr.watchers.borrow_mut().push(Watcher {
            range: self.range.clone(),
            waker: cx.waker().clone(),
        });
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(len: usize) -> Rc<MemRegion> {
        MemRegion::new(MrId(1), MachineId(0), len)
    }

    #[test]
    fn local_read_write_round_trip() {
        let mr = region(16);
        mr.write_local(4, &[1, 2, 3]);
        assert_eq!(mr.read_local(4, 3), vec![1, 2, 3]);
        assert_eq!(mr.read_local(0, 4), vec![0, 0, 0, 0]);
        let mut buf = [0u8; 2];
        mr.read_local_into(5, &mut buf);
        assert_eq!(buf, [2, 3]);
    }

    #[test]
    #[should_panic(expected = "write past end")]
    fn write_out_of_bounds_panics() {
        region(8).write_local(7, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn read_out_of_bounds_panics() {
        let _ = region(8).read_local(8, 1);
    }

    #[test]
    fn overlap_detection() {
        assert!(ranges_overlap(&(0..4), &(3..5)));
        assert!(!ranges_overlap(&(0..4), &(4..5)));
        assert!(ranges_overlap(&(2..3), &(0..10)));
    }

    #[test]
    fn history_snapshot_holds_pre_write_image() {
        let mr = region(8);
        mr.with_history(|h| assert!(h.is_none()));
        mr.write_local(0, &[1, 2, 3]);
        mr.snapshot_history();
        mr.write_local(0, &[9, 9, 9]);
        mr.with_history(|h| assert_eq!(h.unwrap()[..3], [1, 2, 3]));
        // A cold wipe discards the image along with the contents.
        mr.zero();
        mr.with_history(|h| assert!(h.is_none()));
    }

    #[test]
    fn remote_write_bumps_epoch() {
        let mr = region(8);
        assert_eq!(mr.write_epoch(), 0);
        mr.apply_remote_write(0, &[9]);
        assert_eq!(mr.write_epoch(), 1);
        assert_eq!(mr.read_local(0, 1), vec![9]);
        // Local writes do not bump the remote epoch.
        mr.write_local(0, &[1]);
        assert_eq!(mr.write_epoch(), 1);
    }

    #[test]
    fn write_wait_wakes_on_overlapping_write() {
        use rfp_simnet::{SimSpan, Simulation};
        use std::cell::Cell;

        let mut sim = Simulation::new(0);
        let mr = region(64);
        let woke_at = Rc::new(Cell::new(0u64));

        let mr2 = Rc::clone(&mr);
        let woke = Rc::clone(&woke_at);
        let h = sim.handle();
        sim.spawn(async move {
            mr2.wait_remote_write(0..16).await;
            woke.set(h.now().as_nanos());
        });

        let mr3 = Rc::clone(&mr);
        let h2 = sim.handle();
        sim.spawn(async move {
            h2.sleep(SimSpan::nanos(100)).await;
            // Non-overlapping write: must not wake the waiter.
            mr3.apply_remote_write(32, &[1]);
            h2.sleep(SimSpan::nanos(100)).await;
            mr3.apply_remote_write(8, &[2]);
        });

        sim.run();
        assert_eq!(woke_at.get(), 200);
    }

    #[test]
    fn write_wait_created_before_poll_sees_early_write() {
        use rfp_simnet::Simulation;

        let mut sim = Simulation::new(0);
        let mr = region(8);
        // Create the wait, apply the write, then await: must not hang.
        let wait = mr.wait_remote_write(0..8);
        mr.apply_remote_write(0, &[1]);
        let done = Rc::new(std::cell::Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            wait.await;
            d.set(true);
        });
        sim.run();
        assert!(done.get());
    }
}
