//! Cluster construction.

use std::rc::Rc;

use rfp_simnet::{SimHandle, Simulation};

use crate::fault::FabricFaults;
use crate::machine::{Machine, MachineId};
use crate::profile::ClusterProfile;
use crate::qp::{Qp, Transport};

/// A set of machines behind one switch, sharing a timing profile.
///
/// The paper's testbed is `Cluster::new(&mut sim, paper_testbed(), 8)`
/// with machine 0 conventionally acting as the server.
pub struct Cluster {
    handle: SimHandle,
    profile: ClusterProfile,
    machines: Vec<Rc<Machine>>,
    fabric: Rc<FabricFaults>,
}

impl Cluster {
    /// Builds `n` machines with the given profile.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(sim: &mut Simulation, profile: ClusterProfile, n: usize) -> Self {
        assert!(n > 0, "cluster needs at least one machine");
        let handle = sim.handle();
        let machines = (0..n)
            .map(|i| Machine::new(MachineId(i), handle.clone(), profile.nic.clone()))
            .collect();
        Cluster {
            handle,
            profile,
            machines,
            fabric: Rc::new(FabricFaults::default()),
        }
    }

    /// Cluster-wide fabric fault state (link degradation) shared by
    /// every QP created through this cluster.
    pub fn fabric(&self) -> &Rc<FabricFaults> {
        &self.fabric
    }

    /// The shared timing profile.
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// The simulation handle the cluster was built on.
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines (never true; see `new`).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Machine `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn machine(&self, i: usize) -> Rc<Machine> {
        Rc::clone(&self.machines[i])
    }

    /// Registers every machine's NIC instruments into `registry` under
    /// `nic.<machine-index>.*`.
    pub fn attach_metrics(&self, registry: &rfp_simnet::MetricsRegistry) {
        for (i, m) in self.machines.iter().enumerate() {
            m.nic().attach_metrics(registry, &format!("nic.{i}"));
        }
    }

    /// Attaches `recorder` to every machine's NIC: wire-level loss and
    /// retransmit events land in the shared flight recorder, tagged
    /// with the machine index.
    pub fn attach_recorder(&self, recorder: &rfp_simnet::FlightRecorder) {
        for (i, m) in self.machines.iter().enumerate() {
            m.nic().attach_recorder(recorder, i as u32);
        }
    }

    /// Creates an RC queue pair from machine `from` to machine `to`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or equal (loopback QPs are
    /// not modelled — local memory is accessed directly).
    pub fn qp(&self, from: usize, to: usize) -> Rc<Qp> {
        self.qp_typed(from, to, Transport::Rc)
    }

    /// Creates a queue pair of the given transport type (paper §5: RC is
    /// required for one-sided READ; UC/UD trade reliability for message
    /// rate).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Cluster::qp`].
    pub fn qp_typed(&self, from: usize, to: usize, transport: Transport) -> Rc<Qp> {
        assert_ne!(from, to, "loopback QP: access local memory directly");
        Qp::with_transport(
            self.machine(from),
            self.machine(to),
            self.profile.link.clone(),
            Rc::clone(&self.fabric),
            transport,
        )
    }

    /// A factory that mints fresh RC queue pairs from `from` to `to`
    /// without borrowing the cluster — the re-establishment hook a
    /// recovering client installs. Each call picks up the endpoints'
    /// *current* QP epochs, so QPs minted after a QP-error fault are
    /// healthy.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Cluster::qp`].
    pub fn qp_factory(&self, from: usize, to: usize) -> impl Fn() -> Rc<Qp> {
        assert_ne!(from, to, "loopback QP: access local memory directly");
        let local = self.machine(from);
        let remote = self.machine(to);
        let link = self.profile.link.clone();
        let fabric = Rc::clone(&self.fabric);
        move || {
            Qp::with_transport(
                Rc::clone(&local),
                Rc::clone(&remote),
                link.clone(),
                Rc::clone(&fabric),
                Transport::Rc,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ClusterProfile;

    #[test]
    fn builds_requested_machines() {
        let mut sim = Simulation::new(0);
        let c = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 8);
        assert_eq!(c.len(), 8);
        assert_eq!(c.machine(7).id(), MachineId(7));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn rejects_loopback_qp() {
        let mut sim = Simulation::new(0);
        let c = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let _ = c.qp(1, 1);
    }
}
