//! Simulated RDMA cluster: machines, RNICs, memory regions, queue pairs.
//!
//! This crate substitutes for the Mellanox ConnectX-3 InfiniBand testbed
//! used by the RFP paper (see `DESIGN.md` §2). It models the two hardware
//! properties the paper's argument rests on:
//!
//! * **In-bound vs out-bound asymmetry** (§2.2): each simulated NIC has
//!   two engines. The *in-bound* engine serves one-sided operations
//!   arriving from the network entirely in "hardware" at ≈11.26 MOPS for
//!   small payloads; the *out-bound* engine issues operations at only
//!   ≈2.11 MOPS because issuing involves software/hardware interaction.
//!   Out-bound service additionally degrades when more than a few threads
//!   issue concurrently (QP/CQ and lock contention), reproducing the
//!   scalability droops of the paper's Figures 3 and 4.
//! * **Real data movement**: one-sided READ/WRITE actually copy bytes
//!   between registered [`MemRegion`]s, so higher layers (checksums,
//!   retry loops, header protocols) behave exactly as they would on real
//!   remote memory — including observing torn data when a read races a
//!   multi-step local update.
//!
//! Simulated threads ([`ThreadCtx`]) issue verbs through [`Qp`]s. A
//! blocking verb occupies the thread for its whole duration (the paper's
//! clients busy-poll completion queues), which feeds the client CPU
//! utilisation measurements of Figure 15.

mod async_verbs;
mod cluster;
mod cores;
mod fault;
mod machine;
mod mem;
mod nic;
mod profile;
mod qp;

pub use async_verbs::Completion;
pub use cluster::Cluster;
pub use cores::{core_threads, CoreId, CoreMeter, Handoff, RunQueue};
pub use fault::{FabricFaults, MachineFaults, VerbError};
pub use machine::{Machine, MachineId, ThreadCtx};
pub use mem::{MemRegion, MrId};
pub use nic::{Nic, NicCounters};
pub use profile::{ClusterProfile, LinkProfile, NicProfile};
pub use qp::{Qp, Transport};
