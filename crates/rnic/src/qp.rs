//! Queue pairs and verbs.
//!
//! All three InfiniBand transport types from the paper's §5 discussion
//! are modelled:
//!
//! * **RC** (Reliable Connection) — the only transport supporting both
//!   one-sided READ and WRITE; what RFP and all server-bypass designs
//!   require. Completions are ACK-driven.
//! * **UC** (Unreliable Connection) — supports WRITE but not READ;
//!   completions fire at the sender once the op leaves the NIC, and the
//!   packet may be silently lost.
//! * **UD** (Unreliable Datagram) — SEND/RECV only, cheapest per
//!   message (no connection state, no ACKs — how HERD/FaSST push
//!   message rates), lossy.
//!
//! Verbs are *synchronous*: the issuing thread busy-polls its completion
//! queue until the op completes, matching the paper's measurement
//! methodology ("we always wait for an RDMA operation's completion
//! before starting the next operation", §2.2).
//!
//! Timing of a one-sided op of `n` bytes issued by thread `T` on machine
//! `A` against memory of machine `B`:
//!
//! ```text
//! T: issue_cpu ──► A.outbound engine (FIFO, contention-inflated)
//!        ──► propagation ──► B.inbound engine (FIFO)   [bytes move here]
//!        ──► propagation (+ read_turnaround for READ) ──► completion
//! ```
//!
//! The whole interval counts as busy time for `T`.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rand::Rng;

use crate::fault::{FabricFaults, VerbError};
use crate::machine::{Machine, ThreadCtx};
use crate::mem::MemRegion;
use crate::profile::LinkProfile;
use rfp_simnet::{Channel, SimSpan};

/// InfiniBand transport service type of a queue pair (paper §5).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Reliable Connection: one-sided READ + WRITE, SEND/RECV, ACKed.
    Rc,
    /// Unreliable Connection: one-sided WRITE (no READ), SEND/RECV,
    /// fire-and-forget, lossy.
    Uc,
    /// Unreliable Datagram: SEND/RECV only, cheapest per message, lossy.
    Ud,
}

impl Transport {
    /// Whether this transport supports one-sided READ.
    pub fn supports_read(self) -> bool {
        matches!(self, Transport::Rc)
    }

    /// Whether this transport supports one-sided WRITE.
    pub fn supports_write(self) -> bool {
        matches!(self, Transport::Rc | Transport::Uc)
    }

    /// Whether delivery is guaranteed.
    pub fn is_reliable(self) -> bool {
        matches!(self, Transport::Rc)
    }
}

/// Completion-reporting half of a posted flight: the signal fired at
/// completion-consumption time plus the error cell a failed flight
/// fills (the backing state of one `Completion` handle).
pub(crate) struct FlightReport {
    pub(crate) done: rfp_simnet::Signal,
    pub(crate) error: Rc<Cell<Option<VerbError>>>,
}

/// A queue pair from a local machine to a remote machine.
pub struct Qp {
    local: Rc<Machine>,
    remote: Rc<Machine>,
    link: LinkProfile,
    fabric: Rc<FabricFaults>,
    transport: Transport,
    /// QP generation of each endpoint at creation time; if either
    /// machine's generation advances, this QP is in the error state.
    local_epoch: u64,
    remote_epoch: u64,
    /// In-flight two-sided messages awaiting `recv`.
    rx: Channel<Vec<u8>>,
    /// Connection-scoped scratch for synchronous READ snapshots, so the
    /// fetch hot path recycles one allocation instead of a fresh `Vec`
    /// per op. Taken/replaced around each use; a concurrent taker just
    /// sees an empty vec and allocates its own.
    read_scratch: RefCell<Vec<u8>>,
}

impl Qp {
    pub(crate) fn with_transport(
        local: Rc<Machine>,
        remote: Rc<Machine>,
        link: LinkProfile,
        fabric: Rc<FabricFaults>,
        transport: Transport,
    ) -> Rc<Self> {
        let local_epoch = local.faults().qp_epoch();
        let remote_epoch = remote.faults().qp_epoch();
        local.note_qp_endpoint();
        remote.note_qp_endpoint();
        Rc::new(Qp {
            local,
            remote,
            link,
            fabric,
            transport,
            local_epoch,
            remote_epoch,
            rx: Channel::new(),
            read_scratch: RefCell::new(Vec::new()),
        })
    }

    /// The issuing-side machine.
    pub fn local(&self) -> &Rc<Machine> {
        &self.local
    }

    /// The serving-side machine.
    pub fn remote(&self) -> &Rc<Machine> {
        &self.remote
    }

    /// This queue pair's transport service type.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Whether this QP is usable by its issuing side right now.
    ///
    /// Healthy clusters never fail this; under injected faults it is the
    /// completion-with-error a real CQ would report.
    pub fn error_state(&self) -> Option<VerbError> {
        if self.local.faults().is_crashed() {
            return Some(VerbError::LocalDown);
        }
        if self.local_epoch != self.local.faults().qp_epoch()
            || self.remote_epoch != self.remote.faults().qp_epoch()
        {
            return Some(VerbError::QpError);
        }
        None
    }

    /// Issue-time fault gate shared by the fallible verbs.
    fn check_live(&self) -> Result<(), VerbError> {
        match self.error_state() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Wire-arrival fault gate: the op reached the remote NIC; is the
    /// peer still there and is this QP still valid on it? A partition
    /// cutting the request leg means nothing ever arrived — the
    /// initiator sees the same retry-exhausted error, with no remote
    /// side effect.
    fn remote_live(&self) -> Result<(), VerbError> {
        if self.forward_cut() {
            return Err(VerbError::QpError);
        }
        if self.remote.faults().is_crashed() {
            return Err(VerbError::RemoteDown);
        }
        if self.remote_epoch != self.remote.faults().qp_epoch() {
            return Err(VerbError::QpError);
        }
        Ok(())
    }

    /// Whether an asymmetric partition cuts the request leg (issuer →
    /// peer). One `Cell` load; draws nothing.
    fn forward_cut(&self) -> bool {
        self.local.faults().blocks_to(self.remote.id().0)
    }

    /// Whether an asymmetric partition cuts the completion leg (peer →
    /// issuer). Remote side effects may already have landed by the time
    /// this gate fires — that asymmetry is the point: a WRITE whose ACK
    /// is cut still delivered its payload.
    fn reverse_cut(&self) -> bool {
        self.remote.faults().blocks_to(self.local.id().0)
    }

    /// One-way propagation delay, inflated by any fabric degradation
    /// and by per-machine slow-link (gray fail-slow) lag. The lag draw
    /// happens only while a slow-link window is armed, so healthy runs
    /// are bit-identical with or without the fault layer.
    fn prop(&self) -> SimSpan {
        let factor = self.fabric.link_factor();
        let base = if factor == 1.0 {
            self.link.propagation
        } else {
            SimSpan::from_nanos_f64(self.link.propagation.as_nanos() as f64 * factor)
        };
        let lag = self
            .local
            .faults()
            .wire_lag_ns()
            .max(self.remote.faults().wire_lag_ns());
        if lag == 0 {
            return base;
        }
        // Jittered uniformly in [mean/2, 3·mean/2]: slow links are
        // noisy, not a clean constant offset.
        let extra = self
            .local
            .handle()
            .with_rng(|rng| rng.gen_range(lag / 2..=lag + lag / 2));
        base + SimSpan::nanos(extra)
    }

    /// Loss-burst probability contributed by the endpoints' fault state.
    fn burst_loss(&self) -> f64 {
        self.local
            .faults()
            .extra_loss()
            .max(self.remote.faults().extra_loss())
    }

    /// Draws whether an unreliable op is lost in transit; a loss burst
    /// on either endpoint compounds with the profile's base loss rate.
    /// Losses are charged to the sender's NIC drop counter.
    fn lost_in_transit(&self) -> bool {
        let base = self.local.nic().profile().unreliable_loss;
        let burst = self.burst_loss();
        let p = if burst == 0.0 {
            base
        } else {
            1.0 - (1.0 - base) * (1.0 - burst)
        };
        let lost = p > 0.0 && self.local.handle().with_rng(|rng| rng.gen::<f64>()) < p;
        if lost {
            self.local.nic().note_drop();
        }
        lost
    }

    /// During a loss burst, reliable (RC) traffic does not drop but pays
    /// hardware retransmissions; model each as one extra timeout-and-
    /// resend round trip. Retransmitted packets ride the same lossy
    /// link, so rounds repeat geometrically (capped — real RNICs raise a
    /// retry-exceeded error rather than retransmitting forever). Draws
    /// nothing outside bursts, so healthy runs are bit-identical with or
    /// without the fault layer.
    async fn rc_burst_retransmit(&self) {
        const MAX_ROUNDS: u32 = 8;
        let burst = self.burst_loss();
        if burst <= 0.0 {
            return;
        }
        for _ in 0..MAX_ROUNDS {
            if self.local.handle().with_rng(|rng| rng.gen::<f64>()) >= burst {
                break;
            }
            self.local.nic().note_rc_retransmit();
            self.local.handle().sleep(self.prop() * 3).await;
        }
    }

    /// Applies the remote machine's memory-integrity faults to a READ
    /// snapshot. Torn DMA splices the snapshot's suffix from the remote
    /// region's pre-write image (the READ completed mid-write); a bit
    /// flip corrupts one sampled bit. Draws nothing while both faults
    /// are disarmed, so healthy runs are bit-identical with or without
    /// the fault layer.
    fn corrupt_in_flight(&self, remote: &MemRegion, remote_off: usize, snapshot: &mut [u8]) {
        let faults = self.remote.faults();
        let torn = faults.torn_dma();
        if torn > 0.0
            && !snapshot.is_empty()
            && self.local.handle().with_rng(|rng| rng.gen::<f64>()) < torn
        {
            remote.with_history(|hist| {
                if let Some(hist) = hist {
                    // Prefix from the new image, suffix from the old:
                    // the in-bound engine sampled the front of the
                    // buffer after the write and the back before it.
                    let cut = self
                        .local
                        .handle()
                        .with_rng(|rng| rng.gen_range(0..snapshot.len()));
                    for (i, byte) in snapshot.iter_mut().enumerate().skip(cut) {
                        if let Some(&old) = hist.get(remote_off + i) {
                            *byte = old;
                        }
                    }
                }
            });
        }
        let flip = faults.bitflip();
        if flip > 0.0
            && !snapshot.is_empty()
            && self.local.handle().with_rng(|rng| rng.gen::<f64>()) < flip
        {
            let (byte, bit) = self
                .local
                .handle()
                .with_rng(|rng| (rng.gen_range(0..snapshot.len()), rng.gen_range(0..8u32)));
            snapshot[byte] ^= 1 << bit;
        }
    }

    fn check_one_sided(
        &self,
        thread: &ThreadCtx,
        local: &MemRegion,
        local_off: usize,
        remote: &MemRegion,
        remote_off: usize,
        len: usize,
    ) {
        assert_eq!(
            thread.machine().id(),
            self.local.id(),
            "thread must issue on the QP's local machine"
        );
        assert_eq!(
            local.owner(),
            self.local.id(),
            "local MR not registered on this machine"
        );
        assert_eq!(
            remote.owner(),
            self.remote.id(),
            "remote MR not registered on the peer (bad rkey)"
        );
        assert!(local_off + len <= local.len(), "local range out of MR");
        assert!(remote_off + len <= remote.len(), "remote range out of MR");
    }

    /// One-sided RDMA READ: copies `len` bytes from the remote region
    /// into the local region. Returns when the completion is consumed.
    ///
    /// The remote CPU is never involved (server-bypass property); the
    /// bytes are snapshotted at the instant the remote in-bound engine
    /// finishes the op.
    ///
    /// # Panics
    ///
    /// Panics if the thread or regions do not belong to this QP's
    /// machines, if a range exceeds a region, or if an injected fault
    /// errors the op (fault-aware callers use [`Qp::try_read`]).
    pub async fn read(
        &self,
        thread: &ThreadCtx,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
    ) {
        self.try_read(thread, local, local_off, remote, remote_off, len)
            .await
            .expect("READ failed on a QP with no recovery path");
    }

    /// Fallible [`Qp::read`]: completes with a [`VerbError`] instead of
    /// panicking when an injected fault errors the op.
    pub async fn try_read(
        &self,
        thread: &ThreadCtx,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
    ) -> Result<(), VerbError> {
        assert!(
            self.transport.supports_read(),
            "one-sided READ requires RC (got {:?})",
            self.transport
        );
        self.check_one_sided(thread, local, local_off, remote, remote_off, len);
        self.check_live()?;
        let h = thread.handle().clone();
        let t0 = h.now();
        let local_nic = Rc::clone(self.local.nic());
        let remote_nic = self.remote.nic();
        let prof = local_nic.profile().clone();

        let _issuing = local_nic.begin_issue();
        h.sleep(prof.issue_cpu).await;
        local_nic.serve_outbound(len).await;
        self.rc_burst_retransmit().await;
        h.sleep(self.prop()).await;
        if let Err(e) = self.remote_live() {
            // NACK / retry-exhausted completion: one wire round trip,
            // then the CQ reports the error.
            h.sleep(self.prop()).await;
            thread.note_busy(h.now() - t0);
            return Err(e);
        }
        remote_nic.serve_inbound(len).await;
        // Data is sampled at the instant the serving NIC processes the op.
        let mut snapshot = self.read_scratch.take();
        snapshot.clear();
        snapshot.resize(len, 0);
        remote.read_local_into(remote_off, &mut snapshot);
        self.corrupt_in_flight(remote, remote_off, &mut snapshot);
        h.sleep(self.prop() + prof.read_turnaround).await;
        if self.reverse_cut() {
            // The returning data never reaches the initiator: the READ
            // errors out without touching local memory.
            *self.read_scratch.borrow_mut() = snapshot;
            thread.note_busy(h.now() - t0);
            return Err(VerbError::QpError);
        }
        local.write_local(local_off, &snapshot);
        *self.read_scratch.borrow_mut() = snapshot;
        thread.note_busy(h.now() - t0);
        Ok(())
    }

    /// One-sided RDMA WRITE: copies `len` bytes from the local region
    /// into the remote region. Returns when the ACK-driven completion is
    /// consumed; the bytes land remotely (and wake write-watchers) at the
    /// instant the remote in-bound engine finishes.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Qp::read`] (fault-aware callers use
    /// [`Qp::try_write`]).
    pub async fn write(
        &self,
        thread: &ThreadCtx,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
    ) {
        self.try_write(thread, local, local_off, remote, remote_off, len)
            .await
            .expect("WRITE failed on a QP with no recovery path");
    }

    /// Fallible [`Qp::write`]: completes with a [`VerbError`] instead of
    /// panicking when an injected fault errors the op. A UC write to a
    /// crashed peer still completes `Ok` (fire-and-forget) — the packet
    /// is counted dropped at the sender's NIC.
    pub async fn try_write(
        &self,
        thread: &ThreadCtx,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
    ) -> Result<(), VerbError> {
        assert!(
            self.transport.supports_write(),
            "one-sided WRITE requires RC or UC (got {:?})",
            self.transport
        );
        self.check_one_sided(thread, local, local_off, remote, remote_off, len);
        self.check_live()?;
        let h = thread.handle().clone();
        let t0 = h.now();
        let local_nic = Rc::clone(self.local.nic());
        let remote_nic = Rc::clone(self.remote.nic());
        let prof = local_nic.profile().clone();

        let _issuing = local_nic.begin_issue();
        h.sleep(prof.issue_cpu).await;
        let payload = local.read_local(local_off, len);
        local_nic.serve_outbound(len).await;
        match self.transport {
            Transport::Rc => {
                // Reliable: the completion waits for the remote side.
                self.rc_burst_retransmit().await;
                h.sleep(self.prop()).await;
                if let Err(e) = self.remote_live() {
                    h.sleep(self.prop()).await;
                    thread.note_busy(h.now() - t0);
                    return Err(e);
                }
                remote_nic.serve_inbound(len).await;
                remote.apply_remote_write(remote_off, &payload);
                h.sleep(self.prop()).await;
                if self.reverse_cut() {
                    // The ACK leg is cut: the payload landed, but the
                    // initiator only sees a retry-exhausted error.
                    thread.note_busy(h.now() - t0);
                    return Err(VerbError::QpError);
                }
            }
            Transport::Uc => {
                // Fire-and-forget: complete as soon as the op left the
                // NIC; deliver (or lose) the packet asynchronously.
                if !self.lost_in_transit() {
                    let prop = self.prop();
                    let local_m = Rc::clone(&self.local);
                    let remote_m = Rc::clone(&self.remote);
                    let remote = Rc::clone(remote);
                    let local_nic2 = Rc::clone(&local_nic);
                    let h2 = h.clone();
                    h.spawn(async move {
                        h2.sleep(prop).await;
                        if remote_m.faults().is_crashed()
                            || local_m.faults().blocks_to(remote_m.id().0)
                        {
                            local_nic2.note_drop();
                            return;
                        }
                        remote_nic.serve_inbound(len).await;
                        remote.apply_remote_write(remote_off, &payload);
                    });
                }
            }
            Transport::Ud => unreachable!("guarded by supports_write"),
        }
        thread.note_busy(h.now() - t0);
        Ok(())
    }

    /// Two-sided SEND. On RC the completion is ACK-driven and two-sided
    /// ops show no in/out asymmetry (paper §2.2): both NICs pay the
    /// symmetric two-sided cost. On UC/UD the send completes once it
    /// leaves the NIC (UD additionally at the cheaper datagram cost) and
    /// may be lost.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not on this QP's local machine (or, on
    /// RC, if an injected fault errors the op — fault-aware callers use
    /// [`Qp::try_send`]).
    pub async fn send(self: &Rc<Self>, thread: &ThreadCtx, payload: Vec<u8>) {
        self.try_send(thread, payload)
            .await
            .expect("SEND failed on a QP with no recovery path");
    }

    /// Fallible [`Qp::send`]: RC sends complete with a [`VerbError`]
    /// instead of panicking when an injected fault errors the op; UC/UD
    /// sends to a crashed peer still complete `Ok` (fire-and-forget)
    /// with the datagram counted dropped at the sender's NIC.
    pub async fn try_send(
        self: &Rc<Self>,
        thread: &ThreadCtx,
        payload: Vec<u8>,
    ) -> Result<(), VerbError> {
        assert_eq!(
            thread.machine().id(),
            self.local.id(),
            "thread must issue on the QP's local machine"
        );
        self.check_live()?;
        let h = thread.handle().clone();
        let t0 = h.now();
        let local_nic = Rc::clone(self.local.nic());
        let remote_nic = Rc::clone(self.remote.nic());
        let prof = local_nic.profile().clone();
        let len = payload.len();

        let _issuing = local_nic.begin_issue();
        h.sleep(prof.issue_cpu).await;
        match self.transport {
            Transport::Rc => {
                local_nic.serve_twosided_tx(len).await;
                self.rc_burst_retransmit().await;
                h.sleep(self.prop()).await;
                if let Err(e) = self.remote_live() {
                    h.sleep(self.prop()).await;
                    thread.note_busy(h.now() - t0);
                    return Err(e);
                }
                remote_nic.serve_twosided_rx(len).await;
                self.rx.send(payload);
                h.sleep(self.prop()).await;
                if self.reverse_cut() {
                    // The message was delivered; only the ACK is lost.
                    thread.note_busy(h.now() - t0);
                    return Err(VerbError::QpError);
                }
            }
            Transport::Uc | Transport::Ud => {
                let datagram = self.transport == Transport::Ud;
                if datagram {
                    local_nic.serve_ud_tx(len).await;
                } else {
                    local_nic.serve_twosided_tx(len).await;
                }
                if !self.lost_in_transit() {
                    let prop = self.prop();
                    let qp = Rc::clone(self);
                    let h2 = h.clone();
                    h.spawn(async move {
                        h2.sleep(prop).await;
                        if qp.remote.faults().is_crashed() || qp.forward_cut() {
                            qp.local.nic().note_drop();
                            return;
                        }
                        if datagram {
                            remote_nic.serve_ud_rx(len).await;
                        } else {
                            remote_nic.serve_twosided_rx(len).await;
                        }
                        qp.rx.send(payload);
                    });
                }
            }
        }
        thread.note_busy(h.now() - t0);
        Ok(())
    }

    /// Validation shared by the posted (async) read paths.
    pub(crate) fn assert_read_allowed(
        &self,
        thread: &ThreadCtx,
        local: &MemRegion,
        local_off: usize,
        remote: &MemRegion,
        remote_off: usize,
        len: usize,
    ) {
        assert!(
            self.transport.supports_read(),
            "one-sided READ requires RC (got {:?})",
            self.transport
        );
        self.check_one_sided(thread, local, local_off, remote, remote_off, len);
    }

    /// Launches the NIC/wire portion of a posted READ; fires `done` at
    /// completion-consumption time. Posted flights do not hold the
    /// issuing-thread contention guard — the thread is not spinning on
    /// this op.
    ///
    /// Fault handling matches [`Qp::try_read`]: a crashed/re-keyed
    /// endpoint surfaces through `error` after the NACK round trip, and
    /// in-flight corruption applies to the sampled snapshot. All gates
    /// draw nothing while the fault layer is disarmed, so healthy runs
    /// are bit-identical to the pre-fault flights.
    pub(crate) fn spawn_read_flight(
        self: &Rc<Self>,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
        report: FlightReport,
    ) {
        let FlightReport { done, error } = report;
        let h = self.local.handle().clone();
        let local_nic = Rc::clone(self.local.nic());
        let remote_nic = Rc::clone(self.remote.nic());
        let prof = local_nic.profile().clone();
        let prop = self.prop();
        let local = Rc::clone(local);
        let remote = Rc::clone(remote);
        let qp = Rc::clone(self);
        let h2 = h.clone();
        h.spawn(async move {
            if let Some(e) = qp.error_state() {
                error.set(Some(e));
                done.fire();
                return;
            }
            local_nic.serve_outbound(len).await;
            qp.rc_burst_retransmit().await;
            h2.sleep(prop).await;
            if let Err(e) = qp.remote_live() {
                // NACK: the initiator learns after one more wire leg.
                h2.sleep(prop).await;
                error.set(Some(e));
                done.fire();
                return;
            }
            remote_nic.serve_inbound(len).await;
            let mut snapshot = remote.read_local(remote_off, len);
            qp.corrupt_in_flight(&remote, remote_off, &mut snapshot);
            h2.sleep(prop + prof.read_turnaround).await;
            if qp.reverse_cut() {
                error.set(Some(VerbError::QpError));
                done.fire();
                return;
            }
            local.write_local(local_off, &snapshot);
            done.fire();
        });
    }

    /// Launches the NIC/wire portion of a posted WRITE; fires `done` at
    /// ACK time (RC) or once the op left the NIC (UC).
    ///
    /// RC flights report a crashed/re-keyed peer through `error` after
    /// the NACK round trip, like [`Qp::try_write`]; UC flights to a
    /// crashed peer are counted dropped at the sender. All gates draw
    /// nothing while the fault layer is disarmed.
    pub(crate) fn spawn_write_flight(
        self: &Rc<Self>,
        local: &Rc<MemRegion>,
        local_off: usize,
        remote: &Rc<MemRegion>,
        remote_off: usize,
        len: usize,
        report: FlightReport,
    ) {
        let FlightReport { done, error } = report;
        assert!(
            self.transport.supports_write(),
            "one-sided WRITE requires RC or UC (got {:?})",
            self.transport
        );
        let h = self.local.handle().clone();
        let local_nic = Rc::clone(self.local.nic());
        let remote_nic = Rc::clone(self.remote.nic());
        let prop = self.prop();
        let reliable = self.transport.is_reliable();
        let lost = !reliable && self.lost_in_transit();
        let local = Rc::clone(local);
        let remote = Rc::clone(remote);
        let qp = Rc::clone(self);
        let h2 = h.clone();
        h.spawn(async move {
            if let Some(e) = qp.error_state() {
                error.set(Some(e));
                done.fire();
                return;
            }
            let payload = local.read_local(local_off, len);
            local_nic.serve_outbound(len).await;
            if !reliable {
                // Fire-and-forget: completion at NIC egress.
                done.fire();
                if lost {
                    return;
                }
            } else {
                qp.rc_burst_retransmit().await;
            }
            h2.sleep(prop).await;
            if reliable {
                if let Err(e) = qp.remote_live() {
                    h2.sleep(prop).await;
                    error.set(Some(e));
                    done.fire();
                    return;
                }
            } else if qp.remote.faults().is_crashed() || qp.forward_cut() {
                local_nic.note_drop();
                return;
            }
            remote_nic.serve_inbound(len).await;
            remote.apply_remote_write(remote_off, &payload);
            if reliable {
                h2.sleep(prop).await;
                if qp.reverse_cut() {
                    error.set(Some(VerbError::QpError));
                }
                done.fire();
            }
        });
    }

    /// Unsignaled SEND on an unreliable transport: the issuing thread
    /// pays only the software issue cost and moves on; NIC engine time,
    /// propagation and delivery (or loss) happen asynchronously. This is
    /// the selective-signaling technique HERD-class systems use to keep
    /// server threads off the completion path (paper §5's reference to
    /// Kalia et al.'s guidelines).
    ///
    /// # Panics
    ///
    /// Panics on a reliable QP (an RC completion must be consumed) or if
    /// the thread is not on this QP's local machine.
    pub async fn send_nowait(self: &Rc<Self>, thread: &ThreadCtx, payload: Vec<u8>) {
        assert!(
            !self.transport.is_reliable(),
            "send_nowait requires an unreliable transport (UC/UD)"
        );
        assert_eq!(
            thread.machine().id(),
            self.local.id(),
            "thread must issue on the QP's local machine"
        );
        let h = thread.handle().clone();
        let local_nic = Rc::clone(self.local.nic());
        let remote_nic = Rc::clone(self.remote.nic());
        let prof = local_nic.profile().clone();
        let len = payload.len();
        thread.busy(prof.issue_cpu).await;
        let lost = self.lost_in_transit();
        let datagram = self.transport == Transport::Ud;
        let prop = self.prop();
        let qp = Rc::clone(self);
        h.spawn(async move {
            // The NIC still serializes the send on its out-bound engine;
            // only the *thread* is off the hook.
            if datagram {
                local_nic.serve_ud_tx(len).await;
            } else {
                local_nic.serve_twosided_tx(len).await;
            }
            if lost {
                return;
            }
            qp.local.handle().sleep(prop).await;
            if qp.remote.faults().is_crashed() || qp.forward_cut() {
                qp.local.nic().note_drop();
                return;
            }
            if datagram {
                remote_nic.serve_ud_rx(len).await;
            } else {
                remote_nic.serve_twosided_rx(len).await;
            }
            qp.rx.send(payload);
        });
    }

    /// A raw receive future for the next message on this QP, without
    /// busy-time accounting — for callers that need to compose the wait
    /// (e.g. with [`rfp_simnet::timeout`] for loss recovery) and account
    /// CPU themselves.
    pub fn incoming(&self) -> rfp_simnet::Recv<Vec<u8>> {
        self.rx.recv()
    }

    /// Two-sided RECV: busy-polls for the next message on this QP (the
    /// receiving thread spins on its completion queue).
    ///
    /// # Panics
    ///
    /// Panics if the thread is not on this QP's remote machine (RECVs are
    /// posted by the peer of the sender).
    pub async fn recv(&self, thread: &ThreadCtx) -> Vec<u8> {
        assert_eq!(
            thread.machine().id(),
            self.remote.id(),
            "recv must be posted on the QP's remote machine"
        );
        thread.busy_wait(self.rx.recv()).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::profile::ClusterProfile;
    use rfp_simnet::Simulation;
    use std::cell::Cell;

    fn two_machines() -> (Simulation, Cluster) {
        let mut sim = Simulation::new(7);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        (sim, cluster)
    }

    #[test]
    fn read_moves_remote_bytes() {
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        remote.write_local(8, b"hello rdma");
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        let l = Rc::clone(&local);
        let r = Rc::clone(&remote);
        sim.spawn(async move {
            qp.read(&t, &l, 0, &r, 8, 10).await;
        });
        sim.run();
        assert_eq!(&local.read_local(0, 10), b"hello rdma");
    }

    #[test]
    fn scratch_reuse_never_leaks_bytes_across_reads() {
        // The sync READ snapshots through one recycled scratch buffer
        // per QP; back-to-back reads of shrinking/growing lengths and
        // different sources must each surface exactly their own bytes
        // (a stale tail from the previous, longer snapshot would show
        // up here).
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(256);
        let remote = server.alloc_mr(256);
        let long: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(3)).collect();
        remote.write_local(0, &long);
        remote.write_local(128, b"short");
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        let (l, r) = (Rc::clone(&local), Rc::clone(&remote));
        sim.spawn(async move {
            qp.read(&t, &l, 0, &r, 0, 64).await;
            qp.read(&t, &l, 64, &r, 128, 5).await;
            // Grow again after the shrink: the recycled scratch must be
            // re-zeroed/refilled, not resurface the first read's bytes.
            r.write_local(0, &[0xAB; 64]);
            qp.read(&t, &l, 128, &r, 0, 64).await;
        });
        sim.run();
        assert_eq!(local.read_local(0, 64), long);
        assert_eq!(&local.read_local(64, 5), b"short");
        assert_eq!(local.read_local(128, 64), vec![0xAB; 64]);
    }

    #[test]
    fn write_moves_local_bytes_and_counts_ops() {
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        local.write_local(0, b"ping");
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        let l = Rc::clone(&local);
        let r = Rc::clone(&remote);
        sim.spawn(async move {
            qp.write(&t, &l, 0, &r, 16, 4).await;
        });
        sim.run();
        assert_eq!(&remote.read_local(16, 4), b"ping");
        assert_eq!(server.nic().counters().inbound_ops, 1);
        assert_eq!(client.nic().counters().outbound_ops, 1);
        assert_eq!(server.nic().counters().inbound_bytes, 4);
    }

    #[test]
    fn attached_registry_sees_nic_traffic() {
        let (mut sim, cluster) = two_machines();
        let registry = rfp_simnet::MetricsRegistry::new();
        cluster.attach_metrics(&registry);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        sim.spawn(async move {
            qp.write(&t, &local, 0, &remote, 16, 4).await;
        });
        sim.run();
        let snap = registry.snapshot();
        // A WRITE from machine 0 to machine 1: out-bound at the issuer,
        // in-bound at the target — mirrored through the registry.
        assert_eq!(snap.scalar("nic.0.outbound.ops"), Some(1.0));
        assert_eq!(snap.scalar("nic.1.inbound.ops"), Some(1.0));
        assert_eq!(snap.scalar("nic.1.inbound.bytes"), Some(4.0));
        assert_eq!(snap.scalar("nic.0.inbound.ops"), Some(0.0));
        // Engine busy gauges track FifoServer busy time.
        let busy = snap.scalar("nic.1.inbound.busy_ns").unwrap();
        assert!(busy > 0.0, "in-bound engine must have accrued busy time");
        assert_eq!(busy, server.nic().inbound_busy().as_nanos() as f64);
    }

    #[test]
    fn single_read_latency_matches_model() {
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        let lat = Rc::new(Cell::new(0u64));
        let out = Rc::clone(&lat);
        let h = sim.handle();
        sim.spawn(async move {
            let t0 = h.now();
            qp.read(&t, &local, 0, &remote, 0, 32).await;
            out.set((h.now() - t0).as_nanos());
        });
        sim.run();
        // 200 issue + 474 outbound + 300 prop + 89 inbound + 300 prop +
        // 150 turnaround = 1513 ns — in the ~1.5 µs ballpark of real
        // small-read latency on this hardware class.
        assert_eq!(lat.get(), 1513);
    }

    #[test]
    fn write_is_cheaper_than_read() {
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let qp_r = cluster.qp(0, 1);
        let qp_w = cluster.qp(0, 1);
        let t = client.thread("c");
        let read_ns = Rc::new(Cell::new(0u64));
        let write_ns = Rc::new(Cell::new(0u64));
        let (r_out, w_out) = (Rc::clone(&read_ns), Rc::clone(&write_ns));
        let h = sim.handle();
        sim.spawn(async move {
            let t0 = h.now();
            qp_w.write(&t, &local, 0, &remote, 0, 32).await;
            w_out.set((h.now() - t0).as_nanos());
            let t1 = h.now();
            qp_r.read(&t, &local, 0, &remote, 0, 32).await;
            r_out.set((h.now() - t1).as_nanos());
        });
        sim.run();
        assert!(write_ns.get() < read_ns.get());
    }

    #[test]
    fn verb_time_counts_as_busy() {
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        let th = Rc::clone(&t);
        sim.spawn(async move {
            qp.read(&th, &local, 0, &remote, 0, 32).await;
        });
        sim.run();
        assert!((t.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn send_recv_round_trip() {
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let qp = cluster.qp(0, 1);
        let qp2 = Rc::clone(&qp);
        let ct = client.thread("c");
        let st = server.thread("s");
        let got = Rc::new(std::cell::RefCell::new(Vec::new()));
        let out = Rc::clone(&got);
        sim.spawn(async move {
            qp.send(&ct, b"msg".to_vec()).await;
        });
        sim.spawn(async move {
            *out.borrow_mut() = qp2.recv(&st).await;
        });
        sim.run();
        assert_eq!(&*got.borrow(), b"msg");
    }

    #[test]
    #[should_panic(expected = "bad rkey")]
    fn read_rejects_foreign_mr() {
        let (mut sim, cluster) = two_machines();
        let client = cluster.machine(0);
        let local = client.alloc_mr(64);
        // "Remote" region actually owned by the client machine.
        let bogus = client.alloc_mr(64);
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        sim.spawn(async move {
            qp.read(&t, &local, 0, &bogus, 0, 8).await;
        });
        sim.run();
    }

    #[test]
    fn reads_serialize_on_server_inbound_engine() {
        // Two clients on different machines reading the same server:
        // their in-bound service must serialize at the server NIC.
        let mut sim = Simulation::new(1);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 3);
        let server = cluster.machine(2);
        let remote = server.alloc_mr(4096);
        for c in 0..2 {
            let qp = cluster.qp(c, 2);
            let client = cluster.machine(c);
            let local = client.alloc_mr(4096);
            let t = client.thread("c");
            let r = Rc::clone(&remote);
            sim.spawn(async move {
                // Large ops so in-bound service dominates.
                qp.read(&t, &local, 0, &r, 0, 4096).await;
            });
        }
        sim.run();
        let served = server.nic().counters();
        assert_eq!(served.inbound_ops, 2);
        // In-bound engine busy = 2 × service(4096) with no overlap.
        let per_op = server.nic().profile().inbound_service(4096);
        assert_eq!(
            server.nic().inbound_busy().as_nanos(),
            2 * per_op.as_nanos()
        );
    }
}

#[cfg(test)]
mod transport_tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::profile::ClusterProfile;
    use rfp_simnet::{SimSpan, Simulation};
    use std::cell::Cell;

    #[test]
    fn uc_write_completes_without_round_trip() {
        let mut sim = Simulation::new(7);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        local.write_local(0, b"uc-payload");
        let rc = cluster.qp(0, 1);
        let uc = cluster.qp_typed(0, 1, Transport::Uc);
        let t = client.thread("c");
        let (rc_ns, uc_ns) = (Rc::new(Cell::new(0u64)), Rc::new(Cell::new(0u64)));
        let (r_out, u_out) = (Rc::clone(&rc_ns), Rc::clone(&uc_ns));
        let h = sim.handle();
        let remote2 = Rc::clone(&remote);
        sim.spawn(async move {
            let t0 = h.now();
            rc.write(&t, &local, 0, &remote2, 0, 10).await;
            r_out.set((h.now() - t0).as_nanos());
            let t1 = h.now();
            uc.write(&t, &local, 0, &remote2, 16, 10).await;
            u_out.set((h.now() - t1).as_nanos());
        });
        sim.run();
        // Fire-and-forget beats the ACKed RC write...
        assert!(
            uc_ns.get() < rc_ns.get(),
            "{} !< {}",
            uc_ns.get(),
            rc_ns.get()
        );
        // ...and the data still lands (delivery is asynchronous).
        assert_eq!(&remote.read_local(16, 10), b"uc-payload");
    }

    #[test]
    fn ud_send_is_cheaper_than_rc_send() {
        let mut sim = Simulation::new(1);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let rc = cluster.qp(0, 1);
        let ud = cluster.qp_typed(0, 1, Transport::Ud);
        let t = client.thread("c");
        let (rc_ns, ud_ns) = (Rc::new(Cell::new(0u64)), Rc::new(Cell::new(0u64)));
        let (r_out, u_out) = (Rc::clone(&rc_ns), Rc::clone(&ud_ns));
        let h = sim.handle();
        sim.spawn(async move {
            let t0 = h.now();
            rc.send(&t, vec![1; 32]).await;
            r_out.set((h.now() - t0).as_nanos());
            let t1 = h.now();
            ud.send(&t, vec![2; 32]).await;
            u_out.set((h.now() - t1).as_nanos());
        });
        sim.run();
        assert!(
            ud_ns.get() < rc_ns.get(),
            "{} !< {}",
            ud_ns.get(),
            rc_ns.get()
        );
    }

    #[test]
    #[should_panic(expected = "READ requires RC")]
    fn uc_rejects_read() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let local = client.alloc_mr(8);
        let remote = cluster.machine(1).alloc_mr(8);
        let uc = cluster.qp_typed(0, 1, Transport::Uc);
        let t = client.thread("c");
        sim.spawn(async move {
            uc.read(&t, &local, 0, &remote, 0, 8).await;
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "WRITE requires RC or UC")]
    fn ud_rejects_write() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let local = client.alloc_mr(8);
        let remote = cluster.machine(1).alloc_mr(8);
        let ud = cluster.qp_typed(0, 1, Transport::Ud);
        let t = client.thread("c");
        sim.spawn(async move {
            ud.write(&t, &local, 0, &remote, 0, 8).await;
        });
        sim.run();
    }

    #[test]
    fn lossy_ud_drops_a_fraction_of_messages() {
        let mut sim = Simulation::new(3);
        let mut profile = ClusterProfile::paper_testbed();
        profile.nic.unreliable_loss = 0.25;
        let cluster = Cluster::new(&mut sim, profile, 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let ud = cluster.qp_typed(0, 1, Transport::Ud);
        let ud_rx = Rc::clone(&ud);
        let ct = client.thread("c");
        let st = server.thread("s");
        let received = Rc::new(Cell::new(0u32));
        let got = Rc::clone(&received);
        const SENT: u32 = 400;
        sim.spawn(async move {
            for i in 0..SENT {
                ud.send(&ct, i.to_le_bytes().to_vec()).await;
            }
        });
        sim.spawn(async move {
            loop {
                let _ = ud_rx.recv(&st).await;
                got.set(got.get() + 1);
            }
        });
        sim.run_for(SimSpan::millis(2));
        let received = received.get();
        assert!(received < SENT, "some messages must drop");
        let loss = 1.0 - received as f64 / SENT as f64;
        assert!((0.15..0.35).contains(&loss), "loss rate {loss}");
    }

    #[test]
    fn lossy_ud_counts_drops_at_the_sender() {
        let mut sim = Simulation::new(3);
        let mut profile = ClusterProfile::paper_testbed();
        profile.nic.unreliable_loss = 0.25;
        let cluster = Cluster::new(&mut sim, profile, 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let ud = cluster.qp_typed(0, 1, Transport::Ud);
        let ud_rx = Rc::clone(&ud);
        let ct = client.thread("c");
        let st = server.thread("s");
        let received = Rc::new(Cell::new(0u64));
        let got = Rc::clone(&received);
        const SENT: u64 = 200;
        sim.spawn(async move {
            for i in 0..SENT {
                ud.send(&ct, i.to_le_bytes().to_vec()).await;
            }
        });
        sim.spawn(async move {
            loop {
                let _ = ud_rx.recv(&st).await;
                got.set(got.get() + 1);
            }
        });
        sim.run_for(SimSpan::millis(2));
        let dropped = client.nic().counters().dropped;
        assert!(dropped > 0, "losses must be counted, not silent");
        assert_eq!(received.get() + dropped, SENT);
        // The receiving NIC loses nothing of its own.
        assert_eq!(server.nic().counters().dropped, 0);
    }

    #[test]
    fn crashed_remote_errors_reads_after_a_round_trip() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let qp = cluster.qp(0, 1);
        let t = client.thread("c");
        server.faults().set_crashed(true);
        let outcome = Rc::new(Cell::new(None));
        let out = Rc::clone(&outcome);
        let h = sim.handle();
        sim.spawn(async move {
            let t0 = h.now();
            let res = qp.try_read(&t, &local, 0, &remote, 0, 8).await;
            out.set(Some((res, (h.now() - t0).as_nanos())));
        });
        sim.run();
        let (res, elapsed) = outcome.get().unwrap();
        assert_eq!(res, Err(VerbError::RemoteDown));
        // The initiator only learns from the NACK timeout: it paid the
        // issue + out-bound + both propagation legs.
        assert!(elapsed >= 200 + 474 + 2 * 300, "elapsed {elapsed}");
    }

    #[test]
    fn qp_epoch_bump_errors_old_qps_but_not_new_ones() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let old_qp = cluster.qp(0, 1);
        server.faults().bump_qp_epoch();
        assert_eq!(old_qp.error_state(), Some(VerbError::QpError));
        let factory = cluster.qp_factory(0, 1);
        let new_qp = factory();
        assert_eq!(new_qp.error_state(), None);
        let t = client.thread("c");
        let ok = Rc::new(Cell::new(false));
        let flag = Rc::clone(&ok);
        sim.spawn(async move {
            assert_eq!(
                old_qp.try_write(&t, &local, 0, &remote, 0, 8).await,
                Err(VerbError::QpError)
            );
            assert_eq!(new_qp.try_write(&t, &local, 0, &remote, 0, 8).await, Ok(()));
            flag.set(true);
        });
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn forward_partition_errors_ops_without_remote_side_effects() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        local.write_local(0, b"blocked");
        let qp = cluster.qp(0, 1);
        // Cut the request leg only: 0 → 1 drops, 1 → 0 keeps flowing.
        client.faults().block_to(1);
        let t = client.thread("c");
        let ok = Rc::new(Cell::new(false));
        let flag = Rc::clone(&ok);
        let r = Rc::clone(&remote);
        sim.spawn(async move {
            assert_eq!(
                qp.try_write(&t, &local, 0, &r, 0, 7).await,
                Err(VerbError::QpError)
            );
            assert_eq!(
                qp.try_read(&t, &local, 0, &r, 0, 7).await,
                Err(VerbError::QpError)
            );
            flag.set(true);
        });
        sim.run();
        assert!(ok.get());
        // Nothing reached the peer.
        assert_eq!(remote.read_local(0, 7), vec![0; 7]);
    }

    #[test]
    fn reverse_partition_lands_write_payload_but_errors_completion() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        local.write_local(0, b"one-way");
        let qp = cluster.qp(0, 1);
        // Cut the ACK leg only: the request still arrives.
        server.faults().block_to(0);
        let t = client.thread("c");
        let ok = Rc::new(Cell::new(false));
        let flag = Rc::clone(&ok);
        let r = Rc::clone(&remote);
        let l = Rc::clone(&local);
        sim.spawn(async move {
            assert_eq!(
                qp.try_write(&t, &l, 0, &r, 0, 7).await,
                Err(VerbError::QpError)
            );
            // A READ's returning data is also cut: local memory stays
            // untouched.
            assert_eq!(
                qp.try_read(&t, &l, 32, &r, 0, 7).await,
                Err(VerbError::QpError)
            );
            flag.set(true);
        });
        sim.run();
        assert!(ok.get());
        // The WRITE's payload landed despite the failed completion —
        // the asymmetry a split-brain fence must survive.
        assert_eq!(&remote.read_local(0, 7), b"one-way");
        assert_eq!(local.read_local(32, 7), vec![0; 7]);
    }

    #[test]
    fn healed_partition_restores_service() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        local.write_local(0, b"after");
        let qp = cluster.qp(0, 1);
        client.faults().block_to(1);
        client.faults().unblock_to(1);
        let t = client.thread("c");
        let ok = Rc::new(Cell::new(false));
        let flag = Rc::clone(&ok);
        let r = Rc::clone(&remote);
        sim.spawn(async move {
            assert_eq!(qp.try_write(&t, &local, 0, &r, 0, 5).await, Ok(()));
            flag.set(true);
        });
        sim.run();
        assert!(ok.get());
        assert_eq!(&remote.read_local(0, 5), b"after");
    }

    #[test]
    fn link_degradation_scales_propagation() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let qp = cluster.qp(0, 1);
        cluster.fabric().set_link_factor(10.0);
        let t = client.thread("c");
        let lat = Rc::new(Cell::new(0u64));
        let out = Rc::clone(&lat);
        let h = sim.handle();
        sim.spawn(async move {
            let t0 = h.now();
            qp.read(&t, &local, 0, &remote, 0, 32).await;
            out.set((h.now() - t0).as_nanos());
        });
        sim.run();
        // Healthy latency is 1513ns with 2×300ns propagation; at 10× the
        // propagation legs cost 6000ns instead of 600ns.
        assert_eq!(lat.get(), 1513 - 600 + 6000);
    }

    #[test]
    fn slow_link_lag_inflates_latency_without_errors() {
        let mut sim = Simulation::new(9);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let local = client.alloc_mr(64);
        let remote = server.alloc_mr(64);
        let qp = cluster.qp(0, 1);
        server.faults().set_wire_lag(30_000);
        let t = client.thread("c");
        let lat = Rc::new(Cell::new(0u64));
        let out = Rc::clone(&lat);
        let h = sim.handle();
        sim.spawn(async move {
            let t0 = h.now();
            // `read` (not `try_read`) doubles as the no-error assert:
            // a slow link degrades, it never errors.
            qp.read(&t, &local, 0, &remote, 0, 32).await;
            out.set((h.now() - t0).as_nanos());
        });
        sim.run();
        // Healthy READ is 1513 ns; each of the two wire legs now pays a
        // jittered extra in [15 µs, 45 µs].
        assert!(lat.get() >= 1513 + 2 * 15_000, "lat {}", lat.get());
        assert!(lat.get() <= 1513 + 2 * 45_000, "lat {}", lat.get());
        server.faults().set_wire_lag(0);
    }

    #[test]
    fn straggler_factor_inflates_cpu_busy_spans() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let m = cluster.machine(0);
        m.faults().set_cpu_factor(3.0);
        let t = m.thread("slow");
        sim.spawn(async move {
            t.busy(SimSpan::micros(2)).await;
        });
        sim.run();
        assert_eq!(sim.now().as_nanos(), 6_000);
    }

    #[test]
    fn cold_wipe_zeroes_registered_regions() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let m = cluster.machine(0);
        let mr = m.alloc_mr(16);
        mr.write_local(0, b"payload");
        m.wipe_memory();
        assert_eq!(mr.read_local(0, 7), vec![0; 7]);
    }

    #[test]
    fn reliable_rc_never_drops_despite_loss_setting() {
        // The loss knob applies to unreliable transports only.
        let mut sim = Simulation::new(3);
        let mut profile = ClusterProfile::paper_testbed();
        profile.nic.unreliable_loss = 0.5;
        let cluster = Cluster::new(&mut sim, profile, 2);
        let client = cluster.machine(0);
        let server = cluster.machine(1);
        let rc = cluster.qp(0, 1);
        let rc_rx = Rc::clone(&rc);
        let ct = client.thread("c");
        let st = server.thread("s");
        let received = Rc::new(Cell::new(0u32));
        let got = Rc::clone(&received);
        sim.spawn(async move {
            for i in 0..100u32 {
                rc.send(&ct, i.to_le_bytes().to_vec()).await;
            }
        });
        sim.spawn(async move {
            for _ in 0..100 {
                let _ = rc_rx.recv(&st).await;
                got.set(got.get() + 1);
            }
        });
        sim.run_for(SimSpan::millis(2));
        assert_eq!(received.get(), 100);
    }
}
