//! Machines and simulated threads.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::rc::{Rc, Weak};

use rfp_simnet::{BusyClock, SimHandle, SimSpan, SimTime};

use crate::fault::MachineFaults;
use crate::mem::{MemRegion, MrId};
use crate::nic::Nic;
use crate::profile::NicProfile;

/// Identifier of a machine within one cluster.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MachineId(pub usize);

/// One host: a set of cores running simulated threads plus one RNIC.
///
/// Threads are modelled 1:1 with cores (the paper pins each server thread
/// to a dedicated core), so CPU time is accounted per-thread via
/// [`ThreadCtx`] rather than through a shared core scheduler.
pub struct Machine {
    id: MachineId,
    nic: Rc<Nic>,
    handle: SimHandle,
    next_mr: Cell<u64>,
    /// Cumulative bytes of registered (pinned) memory — the server-side
    /// footprint the fleet bench asserts stays flat as logical clients
    /// grow.
    registered_bytes: Cell<u64>,
    /// Queue pairs with an endpoint on this machine — each is real NIC
    /// cache plus host memory on the hardware this models.
    qp_endpoints: Cell<u64>,
    faults: MachineFaults,
    /// Every region registered on this machine, for cold-restart wipes.
    regions: RefCell<Vec<Weak<MemRegion>>>,
}

impl Machine {
    pub(crate) fn new(id: MachineId, handle: SimHandle, profile: NicProfile) -> Rc<Self> {
        Rc::new(Machine {
            id,
            nic: Rc::new(Nic::new(handle.clone(), profile)),
            handle,
            next_mr: Cell::new(0),
            registered_bytes: Cell::new(0),
            qp_endpoints: Cell::new(0),
            faults: MachineFaults::default(),
            regions: RefCell::new(Vec::new()),
        })
    }

    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// This machine's NIC.
    pub fn nic(&self) -> &Rc<Nic> {
        &self.nic
    }

    /// The simulation handle this machine lives on.
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// This machine's injected-fault state (all healthy by default).
    pub fn faults(&self) -> &MachineFaults {
        &self.faults
    }

    /// Registers a zero-filled memory region of `len` bytes with the NIC
    /// (the `malloc_buf` substrate of RFP's Table 2).
    pub fn alloc_mr(&self, len: usize) -> Rc<MemRegion> {
        let seq = self.next_mr.get();
        self.next_mr.set(seq + 1);
        // Encode the owner in the rkey for debuggability.
        let id = MrId(((self.id.0 as u64) << 32) | seq);
        let mr = MemRegion::new(id, self.id, len);
        self.registered_bytes
            .set(self.registered_bytes.get() + len as u64);
        self.regions.borrow_mut().push(Rc::downgrade(&mr));
        mr
    }

    /// Cumulative bytes ever registered on this machine (pinned-memory
    /// footprint; regions are never unpinned in this model).
    pub fn registered_bytes(&self) -> u64 {
        self.registered_bytes.get()
    }

    /// Memory regions ever registered on this machine.
    pub fn mr_count(&self) -> u64 {
        self.next_mr.get()
    }

    /// Queue pairs with an endpoint on this machine.
    pub fn qp_endpoints(&self) -> u64 {
        self.qp_endpoints.get()
    }

    /// Books one QP endpoint (called at QP creation for both sides).
    pub(crate) fn note_qp_endpoint(&self) {
        self.qp_endpoints.set(self.qp_endpoints.get() + 1);
    }

    /// Zero-fills every live memory region registered on this machine —
    /// the cold-restart path, where a rebooted host loses its pinned
    /// buffers along with its DRAM contents. Watchers stay armed; they
    /// wake on the next remote write as usual.
    pub fn wipe_memory(&self) {
        let mut regions = self.regions.borrow_mut();
        regions.retain(|weak| match weak.upgrade() {
            Some(mr) => {
                mr.zero();
                true
            }
            None => false,
        });
    }

    /// Creates a simulated thread (= dedicated core) on this machine.
    pub fn thread(self: &Rc<Self>, name: impl Into<String>) -> Rc<ThreadCtx> {
        Rc::new(ThreadCtx {
            machine: Rc::clone(self),
            name: name.into(),
            busy: BusyClock::new(self.handle.now()),
            handle: self.handle.clone(),
        })
    }
}

/// Execution context of one simulated thread.
///
/// Tracks busy time: verb issue/poll loops and request processing accrue
/// busy time; blocking waits (server-reply mode) do not. The utilisation
/// figure this yields is what the paper plots in Figure 15.
pub struct ThreadCtx {
    machine: Rc<Machine>,
    name: String,
    busy: BusyClock,
    handle: SimHandle,
}

impl ThreadCtx {
    /// The machine this thread runs on.
    pub fn machine(&self) -> &Rc<Machine> {
        &self.machine
    }

    /// The thread's debug name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulation handle (clock, sleeps, spawning).
    pub fn handle(&self) -> &SimHandle {
        &self.handle
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.handle.now()
    }

    /// Spends `span` of CPU time (accrues busy time and advances the
    /// clock). Used for request processing (`P`) and software verb costs.
    /// A straggler fault on the machine inflates the span.
    pub async fn busy(&self, span: SimSpan) {
        let factor = self.machine.faults().cpu_factor();
        let span = if factor == 1.0 {
            span
        } else {
            SimSpan::from_nanos_f64(span.as_nanos() as f64 * factor)
        };
        self.busy.add_busy(span);
        self.handle.sleep(span).await;
    }

    /// Busy-waits until `fut` completes: the elapsed time counts as CPU
    /// busy (models polling a completion queue or spinning on memory).
    pub async fn busy_wait<T>(&self, fut: impl Future<Output = T>) -> T {
        let t0 = self.handle.now();
        let out = fut.await;
        self.busy.add_busy(self.handle.now() - t0);
        out
    }

    /// Blocks until `fut` completes **without** accruing busy time
    /// (models sleeping on an event, as server-reply clients do).
    pub async fn idle_wait<T>(&self, fut: impl Future<Output = T>) -> T {
        fut.await
    }

    /// Accrues `span` of busy time without advancing the clock; used by
    /// verbs, whose whole duration is CQ-polling (busy) time.
    pub fn note_busy(&self, span: SimSpan) {
        self.busy.add_busy(span);
    }

    /// CPU utilisation of this thread since the last reset.
    pub fn utilization(&self) -> f64 {
        self.busy.utilization(self.handle.now())
    }

    /// Resets the utilisation window (discards warm-up).
    pub fn reset_utilization(&self) {
        self.busy.reset(self.handle.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::profile::ClusterProfile;
    use rfp_simnet::Simulation;

    #[test]
    fn mr_ids_are_unique_per_machine() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let m0 = cluster.machine(0);
        let m1 = cluster.machine(1);
        let a = m0.alloc_mr(8);
        let b = m0.alloc_mr(8);
        let c = m1.alloc_mr(8);
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(a.owner(), m0.id());
        assert_eq!(c.owner(), m1.id());
    }

    #[test]
    fn machines_account_registered_memory_and_qps() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let m0 = cluster.machine(0);
        let m1 = cluster.machine(1);
        let _a = m0.alloc_mr(100);
        let _b = m0.alloc_mr(28);
        assert_eq!(m0.registered_bytes(), 128);
        assert_eq!(m0.mr_count(), 2);
        assert_eq!(m1.registered_bytes(), 0);
        let _qp = cluster.qp(0, 1);
        assert_eq!(m0.qp_endpoints(), 1);
        assert_eq!(m1.qp_endpoints(), 1);
        let _qp2 = cluster.qp(1, 0);
        assert_eq!(m0.qp_endpoints(), 2);
        assert_eq!(m1.qp_endpoints(), 2);
    }

    #[test]
    fn busy_accounting_splits_busy_and_idle() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let t = cluster.machine(0).thread("worker");
        let th = Rc::clone(&t);
        let h = sim.handle();
        sim.spawn(async move {
            th.busy(SimSpan::micros(3)).await; // busy
            th.idle_wait(h.sleep(SimSpan::micros(7))).await; // idle
        });
        sim.run();
        assert_eq!(sim.now().as_nanos(), 10_000);
        assert!((t.utilization() - 0.3).abs() < 1e-9, "{}", t.utilization());
    }

    #[test]
    fn busy_wait_accrues_elapsed_time() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let t = cluster.machine(0).thread("poller");
        let th = Rc::clone(&t);
        let h = sim.handle();
        sim.spawn(async move {
            th.busy_wait(h.sleep(SimSpan::micros(4))).await;
        });
        sim.run();
        assert!((t.utilization() - 1.0).abs() < 1e-9);
    }
}
