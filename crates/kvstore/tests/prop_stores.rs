//! Property-based tests for the store substrates: each structure is
//! checked against a simple reference model under arbitrary operation
//! sequences, and the checksum/serialisation layers under arbitrary
//! bytes.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use rfp_kvstore::{
    crc64, CompactPartition, Crc64, KvRequest, KvResponse, LruCache, Partition, PilafStore,
};
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::Simulation;

#[derive(Clone, Debug)]
enum KvOp {
    Get(u16),
    Put(u16, Vec<u8>),
    Remove(u16),
}

fn kv_ops() -> impl Strategy<Value = Vec<KvOp>> {
    vec(
        prop_oneof![
            (0u16..64).prop_map(KvOp::Get),
            ((0u16..64), vec(any::<u8>(), 0..40)).prop_map(|(k, v)| KvOp::Put(k, v)),
            (0u16..64).prop_map(KvOp::Remove),
        ],
        0..300,
    )
}

proptest! {
    /// The Jakiro partition agrees with a HashMap as long as no bucket
    /// overflows (generous sizing here guarantees that).
    #[test]
    fn partition_matches_hashmap(ops in kv_ops()) {
        let mut part = Partition::new(256); // 2048 slots for ≤64 keys
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                KvOp::Get(k) => {
                    let key = k.to_le_bytes().to_vec();
                    prop_assert_eq!(
                        part.get(&key).map(<[u8]>::to_vec),
                        model.get(&key).cloned()
                    );
                }
                KvOp::Put(k, v) => {
                    let key = k.to_le_bytes().to_vec();
                    part.put(&key, &v);
                    model.insert(key, v);
                }
                KvOp::Remove(k) => {
                    let key = k.to_le_bytes().to_vec();
                    prop_assert_eq!(part.remove(&key), model.remove(&key));
                }
            }
            prop_assert_eq!(part.len(), model.len());
        }
        prop_assert_eq!(part.evictions(), 0, "sizing should prevent eviction");
    }

    /// The cacheline-layout partition agrees with a HashMap too.
    #[test]
    fn compact_partition_matches_hashmap(ops in kv_ops()) {
        let mut part = CompactPartition::new(256);
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                KvOp::Get(k) => {
                    let key = k.to_le_bytes().to_vec();
                    prop_assert_eq!(
                        part.get(&key).map(<[u8]>::to_vec),
                        model.get(&key).cloned()
                    );
                }
                KvOp::Put(k, v) => {
                    let key = k.to_le_bytes().to_vec();
                    part.put(&key, &v);
                    model.insert(key, v);
                }
                KvOp::Remove(k) => {
                    let key = k.to_le_bytes().to_vec();
                    prop_assert_eq!(part.remove(&key), model.remove(&key));
                }
            }
            prop_assert_eq!(part.len(), model.len());
        }
        prop_assert_eq!(part.evictions(), 0, "sizing should prevent eviction");
    }

    /// The cuckoo store (server-local paths) agrees with a HashMap.
    #[test]
    fn cuckoo_matches_hashmap(ops in kv_ops()) {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        // ≤64 keys in 256 buckets: ~25% load, displacement always finds
        // room.
        let store = PilafStore::new(&cluster.machine(0), 256, 256, 128);
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                KvOp::Get(k) => {
                    let key = k.to_le_bytes().to_vec();
                    prop_assert_eq!(store.lookup_local(&key), model.get(&key).cloned());
                }
                KvOp::Put(k, v) => {
                    let key = k.to_le_bytes().to_vec();
                    store.insert_local(&key, &v).expect("under-filled table");
                    model.insert(key, v);
                }
                KvOp::Remove(k) => {
                    let key = k.to_le_bytes().to_vec();
                    prop_assert_eq!(store.remove_local(&key), model.remove(&key).is_some());
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
    }

    /// The LRU cache matches an order-preserving reference model.
    #[test]
    fn lru_matches_model(cap in 1usize..12, ops in kv_ops()) {
        let mut lru = LruCache::new(cap);
        let mut model: Vec<(Vec<u8>, Vec<u8>)> = Vec::new(); // MRU first
        for op in ops {
            match op {
                KvOp::Get(k) => {
                    let key = k.to_le_bytes().to_vec();
                    let got = lru.get(&key).cloned();
                    let expect = model.iter().position(|e| e.0 == key).map(|i| {
                        let e = model.remove(i);
                        let v = e.1.clone();
                        model.insert(0, e);
                        v
                    });
                    prop_assert_eq!(got, expect);
                }
                KvOp::Put(k, v) => {
                    let key = k.to_le_bytes().to_vec();
                    let evicted = lru.put(key.clone(), v.clone());
                    if let Some(i) = model.iter().position(|e| e.0 == key) {
                        model.remove(i);
                        prop_assert!(evicted.is_none());
                    } else if model.len() == cap {
                        let victim = model.pop().expect("full");
                        prop_assert_eq!(evicted, Some(victim));
                    } else {
                        prop_assert!(evicted.is_none());
                    }
                    model.insert(0, (key, v));
                }
                KvOp::Remove(k) => {
                    let key = k.to_le_bytes().to_vec();
                    let got = lru.remove(&key);
                    let expect = model
                        .iter()
                        .position(|e| e.0 == key)
                        .map(|i| model.remove(i).1);
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(lru.len(), model.len());
        }
    }

    /// CRC64 is split-invariant and collision-sensitive on single flips.
    #[test]
    fn crc64_streaming_split(data in vec(any::<u8>(), 0..200), split in any::<prop::sample::Index>()) {
        let cut = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut c = Crc64::new();
        c.update(&data[..cut]);
        c.update(&data[cut..]);
        prop_assert_eq!(c.finish(), crc64(&data));
    }

    #[test]
    fn crc64_detects_any_single_flip(data in vec(any::<u8>(), 1..100), idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let clean = crc64(&data);
        let mut tampered = data.clone();
        let i = idx.index(data.len());
        tampered[i] ^= 1 << bit;
        prop_assert_ne!(crc64(&tampered), clean);
    }

    /// The KV wire protocol round-trips arbitrary payloads.
    #[test]
    fn proto_request_round_trip(key in vec(any::<u8>(), 0..64), value in vec(any::<u8>(), 0..256), kind in 0u8..3) {
        let req = match kind {
            0 => KvRequest::Get { key: &key },
            1 => KvRequest::Put { key: &key, value: &value },
            _ => KvRequest::Delete { key: &key },
        };
        let bytes = req.encode();
        prop_assert_eq!(KvRequest::decode(&bytes).expect("round trip"), req);
    }

    #[test]
    fn proto_multiget_round_trip(keys in vec(vec(any::<u8>(), 0..32), 1..12)) {
        let req = KvRequest::MultiGet {
            keys: keys.iter().map(Vec::as_slice).collect(),
        };
        let bytes = req.encode();
        prop_assert_eq!(KvRequest::decode(&bytes).expect("round trip"), req);
    }

    #[test]
    fn proto_response_round_trip(value in vec(any::<u8>(), 0..512), tag in 0u8..4, found in any::<bool>()) {
        let resp = match tag {
            0 => KvResponse::Found(value),
            1 => KvResponse::NotFound,
            2 => KvResponse::Stored,
            _ => KvResponse::Deleted(found),
        };
        let bytes = resp.encode();
        prop_assert_eq!(KvResponse::decode(&bytes).expect("round trip"), resp);
    }

    #[test]
    fn proto_values_round_trip(values in vec(prop::option::of(vec(any::<u8>(), 0..64)), 0..12)) {
        let resp = KvResponse::Values(values);
        let bytes = resp.encode();
        prop_assert_eq!(KvResponse::decode(&bytes).expect("round trip"), resp);
    }

    /// Truncating any encoded request never panics — it errors.
    #[test]
    fn proto_truncation_is_graceful(key in vec(any::<u8>(), 0..32), value in vec(any::<u8>(), 0..64), keep in any::<prop::sample::Index>()) {
        let bytes = KvRequest::Put { key: &key, value: &value }.encode();
        let cut = keep.index(bytes.len());
        // Decoding a prefix either fails cleanly or (when only trailing
        // value bytes were cut but the header still fits) succeeds.
        let _ = KvRequest::decode(&bytes[..cut]);
    }
}
