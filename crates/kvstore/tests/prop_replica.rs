//! Satellite wire-compatibility pin: with replication **off** (the
//! [`ReplicationConfig::default`]) nothing new reaches the wire — a
//! replication-unaware deployment stamps epoch 0 everywhere, and an
//! epoch-0 header encodes **byte-identically** to the pre-replication
//! (PR 7) wire format. The reference encoders below are written from
//! that format's spec, independently of the production encoder.

use proptest::prelude::*;

use rfp_core::{ReqHeader, RespHeader, RespIntegrity, RespStatus, MAX_PAYLOAD};
use rfp_kvstore::ReplicationConfig;
use rfp_simnet::SimTime;

const VALID_BIT: u32 = 1 << 31;
const DEADLINE_BIT: u32 = 1 << 30;
const TENANT_BIT: u32 = 1 << 29;
const INTEGRITY_BIT: u32 = 1 << 30;

/// The PR 7 request layout: 8 bytes, extended to 16 by a deadline and
/// to 24 by a tenant — no epoch field anywhere.
fn legacy_req_bytes(
    valid: bool,
    size: u32,
    seq: u32,
    deadline_ns: Option<u64>,
    tenant: Option<u32>,
) -> Vec<u8> {
    let mut word = size;
    if valid {
        word |= VALID_BIT;
    }
    if deadline_ns.is_some() {
        word |= DEADLINE_BIT;
    }
    if tenant.is_some() {
        word |= TENANT_BIT;
    }
    let len = if tenant.is_some() {
        24
    } else if deadline_ns.is_some() {
        16
    } else {
        8
    };
    let mut buf = vec![0u8; len];
    buf[0..4].copy_from_slice(&word.to_le_bytes());
    buf[4..8].copy_from_slice(&seq.to_le_bytes());
    if let Some(d) = deadline_ns {
        buf[8..16].copy_from_slice(&d.to_le_bytes());
    }
    if let Some(t) = tenant {
        buf[16..20].copy_from_slice(&t.to_le_bytes());
    }
    buf
}

/// The PR 7 response layout: 16 bytes (bytes 13..16 spare zeros),
/// extended to 32 by the integrity fields.
fn legacy_resp_bytes(
    valid: bool,
    size: u32,
    seq: u32,
    time_us: u16,
    status: RespStatus,
    credits: u16,
    integrity: Option<(u64, u32)>,
) -> Vec<u8> {
    let mut word = size;
    if valid {
        word |= VALID_BIT;
    }
    if integrity.is_some() {
        word |= INTEGRITY_BIT;
    }
    let len = if integrity.is_some() { 32 } else { 16 };
    let mut buf = vec![0u8; len];
    buf[0..4].copy_from_slice(&word.to_le_bytes());
    buf[4..8].copy_from_slice(&seq.to_le_bytes());
    buf[8..10].copy_from_slice(&time_us.to_le_bytes());
    buf[10] = status.to_u8();
    buf[11..13].copy_from_slice(&credits.to_le_bytes());
    if let Some((crc, generation)) = integrity {
        buf[16..24].copy_from_slice(&crc.to_le_bytes());
        buf[24..28].copy_from_slice(&generation.to_le_bytes());
    }
    buf
}

/// The epoch every header carries when replication is off: default
/// config → no promotion ever happens → everything stays in epoch 0.
fn replication_off_epoch() -> u16 {
    let cfg = ReplicationConfig::default();
    assert!(!cfg.enabled, "default replication config must be off");
    0
}

proptest! {
    /// Replication-off request headers are byte-for-byte the PR 7 wire
    /// format, across the whole deadline × tenant extension product.
    #[test]
    fn replication_off_req_headers_are_legacy_bytes(
        valid in any::<bool>(),
        size in 0u32..(1 << 28),
        seq in any::<u32>(),
        deadline_ns in prop::option::of(any::<u64>()),
        tenant in prop::option::of(any::<u32>()),
    ) {
        let h = ReqHeader {
            valid,
            size,
            seq,
            deadline: deadline_ns.map(SimTime::from_nanos),
            tenant,
            epoch: replication_off_epoch(),
        };
        let mut buf = vec![0u8; h.wire_len()];
        h.encode(&mut buf);
        prop_assert_eq!(buf, legacy_req_bytes(valid, size, seq, deadline_ns, tenant));
    }

    /// Replication-off response headers are byte-for-byte the PR 7 wire
    /// format, with and without the integrity extension.
    #[test]
    fn replication_off_resp_headers_are_legacy_bytes(
        valid in any::<bool>(),
        size in 0u32..=MAX_PAYLOAD as u32,
        seq in any::<u32>(),
        time_us in any::<u16>(),
        status in (0u8..4).prop_map(RespStatus::from_u8),
        credits in any::<u16>(),
        integrity in prop::option::of((any::<u64>(), any::<u32>())),
    ) {
        let h = RespHeader {
            valid,
            size,
            seq,
            time_us,
            status,
            credits,
            integrity: integrity.map(|(crc, generation)| RespIntegrity { crc, generation }),
            epoch: replication_off_epoch(),
        };
        let mut buf = vec![0u8; h.wire_len()];
        h.encode(&mut buf);
        prop_assert_eq!(
            buf,
            legacy_resp_bytes(valid, size, seq, time_us, status, credits, integrity)
        );
    }
}
