//! Primary/backup replication end-to-end: sync log shipping, epoch
//! promotion, and failover through the replica router.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rfp_core::{
    connect, FailoverConfig, RecoveryConfig, ReplicaClient, RfpClient, RfpConfig, RfpServerConn,
};
use rfp_kvstore::replica::{
    backup_serve_loop, primary_serve_loop, AckPolicy, BackupRole, PrimaryRole, ReplicationConfig,
};
use rfp_kvstore::{KvRequest, KvResponse, Partition};
use rfp_rnic::{Cluster, ClusterProfile, ThreadCtx};
use rfp_simnet::{RetryPolicy, SimSpan, Simulation};

/// Machine 0 = primary, 1 = backup, 2 = client.
struct Rig {
    sim: Simulation,
    cluster: Cluster,
    router: Rc<ReplicaClient>,
    client_thread: Rc<ThreadCtx>,
    primary_part: Rc<RefCell<Partition>>,
    backup_part: Rc<RefCell<Partition>>,
    primary_role: Rc<PrimaryRole>,
    backup_role: Rc<BackupRole>,
    backup_client_conns: Vec<Rc<RfpServerConn>>,
}

fn plain_cfg() -> RfpConfig {
    RfpConfig {
        enable_mode_switch: false,
        ..RfpConfig::default()
    }
}

fn short_recovery(seed: u64) -> RecoveryConfig {
    RecoveryConfig {
        retry: RetryPolicy::exponential(3, SimSpan::micros(5), SimSpan::micros(50), 0.2),
        seed,
        ..RecoveryConfig::default()
    }
}

fn rig(ack: AckPolicy) -> Rig {
    let mut sim = Simulation::new(77);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 3);
    let (primary_m, backup_m, client_m) =
        (cluster.machine(0), cluster.machine(1), cluster.machine(2));

    let primary_part = Rc::new(RefCell::new(Partition::new(256)));
    let backup_part = Rc::new(RefCell::new(Partition::new(256)));
    let primary_role = Rc::new(PrimaryRole::default());
    let backup_role = Rc::new(BackupRole::default());

    // The dedicated replication link, primary -> backup.
    let (ship, repl_conn) = connect(
        &primary_m,
        &backup_m,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        plain_cfg(),
    );
    ship.set_reconnect(cluster.qp_factory(0, 1));

    // Client links to both replicas.
    let mut replicas: Vec<Rc<RfpClient>> = Vec::new();
    let (cl_p, prim_conn) = connect(
        &client_m,
        &primary_m,
        cluster.qp(2, 0),
        cluster.qp(0, 2),
        plain_cfg(),
    );
    cl_p.set_reconnect(cluster.qp_factory(2, 0));
    replicas.push(Rc::new(cl_p));
    let (cl_b, backup_conn) = connect(
        &client_m,
        &backup_m,
        cluster.qp(2, 1),
        cluster.qp(1, 2),
        plain_cfg(),
    );
    cl_b.set_reconnect(cluster.qp_factory(2, 1));
    replicas.push(Rc::new(cl_b));
    let backup_client_conns = vec![Rc::new(backup_conn)];

    sim.spawn(primary_serve_loop(
        primary_m.thread("primary"),
        vec![Rc::new(prim_conn)],
        Rc::clone(&primary_part),
        Rc::new(ship),
        ReplicationConfig {
            enabled: true,
            ack,
            batch: 4,
            recovery: short_recovery(0xA11),
        },
        Rc::clone(&primary_role),
        SimSpan::nanos(100),
    ));
    sim.spawn(backup_serve_loop(
        backup_m.thread("backup"),
        Rc::new(repl_conn),
        backup_client_conns.clone(),
        Rc::clone(&backup_part),
        Rc::clone(&backup_role),
        SimSpan::nanos(100),
    ));

    let router = Rc::new(ReplicaClient::new(
        replicas,
        FailoverConfig {
            recovery: short_recovery(0xB22),
            max_failovers: 4,
            ..FailoverConfig::default()
        },
    ));
    Rig {
        client_thread: client_m.thread("client"),
        sim,
        cluster,
        router,
        primary_part,
        backup_part,
        primary_role,
        backup_role,
        backup_client_conns,
    }
}

fn put(i: u32) -> Vec<u8> {
    KvRequest::Put {
        key: format!("k{i}").into_bytes().as_slice(),
        value: format!("v{i}").into_bytes().as_slice(),
    }
    .encode()
}

#[test]
fn sync_replication_ships_every_put() {
    let mut r = rig(AckPolicy::Sync);
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    let done = Rc::new(Cell::new(0u32));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        for i in 0..10u32 {
            let out = router.call(&t, &put(i)).await.expect("healthy put");
            assert_eq!(KvResponse::decode(&out.data).unwrap(), KvResponse::Stored);
            d.set(d.get() + 1);
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    assert_eq!(done.get(), 10);
    assert_eq!(r.primary_role.shipped_entries.get(), 10);
    assert_eq!(r.backup_role.applied.get(), 10);
    assert!(!r.primary_role.solo.get());
    // Every acked PUT is already on the backup — the sync invariant.
    for i in 0..10u32 {
        let key = format!("k{i}").into_bytes();
        assert_eq!(
            r.backup_part.borrow_mut().get(&key),
            Some(format!("v{i}").as_bytes()),
            "k{i} missing on backup"
        );
    }
}

#[test]
fn primary_crash_promotes_backup_with_replicated_data() {
    let mut r = rig(AckPolicy::Sync);
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    let cluster_primary = r.cluster.machine(0);
    let backup_role = Rc::clone(&r.backup_role);
    let backup_conns = r.backup_client_conns.clone();
    let phase = Rc::new(Cell::new(0u32));
    let ph = Rc::clone(&phase);
    r.sim.spawn(async move {
        // Phase 1: replicate five writes through the primary.
        for i in 0..5u32 {
            router.call(&t, &put(i)).await.expect("pre-crash put");
        }
        ph.set(1);
        // The failure detector: crash the primary, promote the backup
        // into epoch 1.
        cluster_primary.faults().set_crashed(true);
        backup_role.promote(&backup_conns, 1);
        // Phase 2: reads and writes continue against the promoted
        // backup; pre-crash acked writes are all there.
        for i in 0..5u32 {
            let req = KvRequest::Get {
                key: format!("k{i}").into_bytes().as_slice(),
            }
            .encode();
            let out = router.call(&t, &req).await.expect("post-failover get");
            assert_eq!(
                KvResponse::decode(&out.data).unwrap(),
                KvResponse::Found(format!("v{i}").into_bytes()),
                "acked write k{i} lost in failover"
            );
        }
        let out = router.call(&t, &put(99)).await.expect("post-failover put");
        assert_eq!(KvResponse::decode(&out.data).unwrap(), KvResponse::Stored);
        ph.set(2);
    });
    r.sim.run_for(SimSpan::millis(50));
    assert_eq!(phase.get(), 2);
    assert_eq!(r.router.active(), 1);
    assert!(r.router.failovers() >= 1);
    assert_eq!(r.router.known_epoch(), 1);
    // The post-failover write landed on the backup, not the primary.
    assert_eq!(
        r.backup_part.borrow_mut().get(b"k99".as_slice()),
        Some(b"v99".as_slice())
    );
    assert_eq!(r.primary_part.borrow_mut().get(b"k99".as_slice()), None);
}

#[test]
fn backup_crash_demotes_primary_to_solo() {
    let mut r = rig(AckPolicy::Sync);
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    let cluster_backup = r.cluster.machine(1);
    let done = Rc::new(Cell::new(0u32));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        for i in 0..3u32 {
            router.call(&t, &put(i)).await.expect("replicated put");
        }
        cluster_backup.faults().set_crashed(true);
        // Writes keep succeeding: the primary exhausts its ship budget,
        // declares the backup dead, and serves solo.
        for i in 3..6u32 {
            router.call(&t, &put(i)).await.expect("solo put");
        }
        d.set(1);
    });
    r.sim.run_for(SimSpan::millis(50));
    assert_eq!(done.get(), 1);
    assert!(r.primary_role.solo.get());
    assert_eq!(r.primary_role.shipped_entries.get(), 3);
    for i in 0..6u32 {
        let key = format!("k{i}").into_bytes();
        assert!(r.primary_part.borrow_mut().get(&key).is_some(), "k{i} lost");
    }
}

#[test]
fn async_ack_does_not_hold_responses() {
    let mut r = rig(AckPolicy::Async);
    let router = Rc::clone(&r.router);
    let t = Rc::clone(&r.client_thread);
    let done = Rc::new(Cell::new(0u32));
    let d = Rc::clone(&done);
    r.sim.spawn(async move {
        for i in 0..8u32 {
            router.call(&t, &put(i)).await.expect("async put");
            d.set(d.get() + 1);
        }
    });
    r.sim.run_for(SimSpan::millis(10));
    assert_eq!(done.get(), 8);
    // The log still ships (at scan end), just off the ack path.
    assert_eq!(r.primary_role.shipped_entries.get(), 8);
    assert_eq!(r.backup_role.applied.get(), 8);
}
