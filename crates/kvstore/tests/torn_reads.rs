//! Failure injection: get-put races on the Pilaf-style store.
//!
//! The whole reason Pilaf checksums its entries (§1) is that a one-sided
//! GET can race a server-side PUT and observe torn bytes. These tests
//! drive that race deliberately: the server updates an entry in two
//! phases with a CPU gap, while a client hammers the same key with
//! bypass GETs. The client must (a) observe at least one checksum
//! failure, and (b) never return a value that is neither the old nor the
//! new one.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rfp_kvstore::{bypass_get, PilafStore};
use rfp_paradigms::BypassClient;
use rfp_rnic::{Cluster, ClusterProfile};
use rfp_simnet::{SimSpan, Simulation};

#[test]
fn torn_update_is_detected_and_never_leaks() {
    let mut sim = Simulation::new(99);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let server_m = cluster.machine(0);

    let mut store = PilafStore::new(&server_m, 64, 64, 128);
    // A wide torn window so reads land inside it.
    store.update_gap = SimSpan::micros(3);
    let store = Rc::new(store);

    let key = b"contended";
    let old_value = vec![0xAAu8; 48];
    let new_value = vec![0xBBu8; 48];
    store.insert_local(key, &old_value).expect("preload");

    // Server: rewrite the value every ~20µs, torn-phase included.
    let st = server_m.thread("server");
    let s2 = Rc::clone(&store);
    let h = sim.handle();
    let old2 = old_value.clone();
    let new2 = new_value.clone();
    sim.spawn(async move {
        let mut flip = false;
        loop {
            h.sleep(SimSpan::micros(20)).await;
            let v = if flip { &old2 } else { &new2 };
            flip = !flip;
            s2.put(&st, key, v).await.expect("update in place");
        }
    });

    // Client: continuous bypass GETs on the same key.
    let client = BypassClient::new(cluster.qp(1, 0), 512);
    let ct = cluster.machine(1).thread("client");
    let view = store.view();
    let retries = Rc::new(Cell::new(0u32));
    let reads = Rc::new(Cell::new(0u32));
    let bad = Rc::new(RefCell::new(Vec::new()));
    let (r2, n2, b2) = (Rc::clone(&retries), Rc::clone(&reads), Rc::clone(&bad));
    let old3 = old_value.clone();
    let new3 = new_value.clone();
    sim.spawn(async move {
        loop {
            let got = bypass_get(&client, &ct, &view, key).await;
            r2.set(r2.get() + got.crc_retries);
            n2.set(n2.get() + 1);
            match got.value {
                Some(v) if v == old3 || v == new3 => {}
                other => b2.borrow_mut().push(other),
            }
        }
    });

    sim.run_for(SimSpan::millis(5));

    assert!(reads.get() > 100, "client barely ran: {}", reads.get());
    assert!(
        retries.get() > 0,
        "the torn window was never observed — race injection broken"
    );
    assert!(
        bad.borrow().is_empty(),
        "torn/mixed values leaked: {:?}",
        bad.borrow()
    );
}

#[test]
fn interleaved_distinct_keys_never_interfere() {
    // A writer mutating key A must never corrupt reads of key B.
    let mut sim = Simulation::new(5);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let server_m = cluster.machine(0);
    let mut store = PilafStore::new(&server_m, 128, 128, 128);
    store.update_gap = SimSpan::micros(2);
    let store = Rc::new(store);

    store
        .insert_local(b"stable", b"constant-value")
        .expect("preload");
    store.insert_local(b"churny", &[0u8; 32]).expect("preload");

    let st = server_m.thread("server");
    let s2 = Rc::clone(&store);
    let h = sim.handle();
    sim.spawn(async move {
        let mut i = 0u8;
        loop {
            h.sleep(SimSpan::micros(10)).await;
            i = i.wrapping_add(1);
            s2.put(&st, b"churny", &[i; 32]).await.expect("update");
        }
    });

    let client = BypassClient::new(cluster.qp(1, 0), 512);
    let ct = cluster.machine(1).thread("client");
    let view = store.view();
    let ok_reads = Rc::new(Cell::new(0u32));
    let ok2 = Rc::clone(&ok_reads);
    sim.spawn(async move {
        loop {
            let got = bypass_get(&client, &ct, &view, b"stable").await;
            assert_eq!(
                got.value.as_deref(),
                Some(&b"constant-value"[..]),
                "stable key corrupted by unrelated churn"
            );
            ok2.set(ok2.get() + 1);
        }
    });

    sim.run_for(SimSpan::millis(3));
    assert!(ok_reads.get() > 100);
}

#[test]
fn missing_keys_return_none_quickly() {
    let mut sim = Simulation::new(1);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let server_m = cluster.machine(0);
    let store = PilafStore::new(&server_m, 64, 64, 128);
    store.insert_local(b"present", b"v").expect("preload");

    let client = BypassClient::new(cluster.qp(1, 0), 512);
    let ct = cluster.machine(1).thread("client");
    let view = store.view();
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        let got = bypass_get(&client, &ct, &view, b"absent").await;
        assert_eq!(got.value, None);
        // Absence costs at most the three candidate probes.
        assert!(got.ops <= 3, "absence probing used {} ops", got.ops);
        assert_eq!(got.crc_retries, 0);
        d.set(true);
    });
    sim.run();
    assert!(done.get());
}

#[test]
fn remove_frees_cells_for_reuse() {
    let mut sim = Simulation::new(4);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
    // Exactly 4 cells: insert/remove cycles must recycle them.
    let store = PilafStore::new(&cluster.machine(0), 16, 4, 64);
    for round in 0..10u8 {
        for i in 0..4u8 {
            store
                .insert_local(&[round, i], &[round; 16])
                .expect("cells recycled");
        }
        assert_eq!(store.len(), 4);
        for i in 0..4u8 {
            assert!(store.remove_local(&[round, i]));
        }
        assert!(store.is_empty());
    }
    // Removing a missing key reports false and frees nothing.
    assert!(!store.remove_local(b"never-inserted"));
}

#[test]
fn removed_keys_are_invisible_to_bypass_gets() {
    let mut sim = Simulation::new(6);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let server_m = cluster.machine(0);
    let store = Rc::new(PilafStore::new(&server_m, 64, 64, 128));
    store
        .insert_local(b"victim", b"to-be-removed")
        .expect("preload");
    store.insert_local(b"keeper", b"stays").expect("preload");

    let client = BypassClient::new(cluster.qp(1, 0), 512);
    let ct = cluster.machine(1).thread("client");
    let view = store.view();
    let s2 = Rc::clone(&store);
    let done = Rc::new(Cell::new(false));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        let before = bypass_get(&client, &ct, &view, b"victim").await;
        assert_eq!(before.value.as_deref(), Some(&b"to-be-removed"[..]));
        s2.remove_local(b"victim");
        let after = bypass_get(&client, &ct, &view, b"victim").await;
        assert_eq!(after.value, None);
        let keeper = bypass_get(&client, &ct, &view, b"keeper").await;
        assert_eq!(keeper.value.as_deref(), Some(&b"stays"[..]));
        d.set(true);
    });
    sim.run();
    assert!(done.get());
}
