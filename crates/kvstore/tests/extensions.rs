//! Tests of the extension systems: the HERD-style comparator over
//! unreliable transports (paper §5) and the EREW-ablation variant of
//! Jakiro.

use rfp_kvstore::{
    spawn_herd, spawn_jakiro, spawn_jakiro_shared, spawn_server_reply_kv, KvSystem, SystemConfig,
};
use rfp_simnet::{SimSpan, Simulation};
use rfp_workload::{KeyDist, OpMix, WorkloadSpec};

fn measure(
    spawn: impl FnOnce(&mut Simulation, &SystemConfig) -> KvSystem,
    cfg: &SystemConfig,
) -> (KvSystem, f64) {
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn(&mut sim, cfg);
    sim.run_for(SimSpan::millis(1));
    sys.reset_measurements();
    let window = SimSpan::millis(4);
    sim.run_for(window);
    let mops = sys.stats.completed.get() as f64 / window.as_secs_f64() / 1e6;
    (sys, mops)
}

fn cfg() -> SystemConfig {
    SystemConfig {
        spec: WorkloadSpec {
            key_count: 2_000,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    }
}

#[test]
fn herd_sits_between_server_reply_and_jakiro() {
    // §5's claim: UD/UC designs "may achieve higher performance than
    // RC-based solutions" (meaning RC server-reply) — but RFP's
    // in-bound-only server still wins.
    let (_, herd) = measure(spawn_herd, &cfg());
    let (_, sr) = measure(spawn_server_reply_kv, &cfg());
    let (_, jakiro) = measure(spawn_jakiro, &cfg());
    assert!(
        herd > 1.15 * sr,
        "HERD-style should beat RC server-reply: {herd:.2} vs {sr:.2}"
    );
    assert!(
        jakiro > 1.3 * herd,
        "RFP should still win: {jakiro:.2} vs {herd:.2}"
    );
}

#[test]
fn herd_server_burns_outbound_ops_unlike_rfp() {
    let (herd_sys, _) = measure(spawn_herd, &cfg());
    let (jakiro_sys, _) = measure(spawn_jakiro, &cfg());
    let herd_out = herd_sys.server_machine.nic().counters().outbound_ops;
    assert!(
        herd_out as f64 >= 0.95 * herd_sys.stats.completed.get() as f64,
        "every HERD response is an out-bound UD send"
    );
    assert_eq!(jakiro_sys.server_machine.nic().counters().outbound_ops, 0);
}

#[test]
fn herd_survives_packet_loss_correctly() {
    // With real loss on the wire, calls still complete (retransmission)
    // and answers stay correct — at a visible throughput cost.
    let lossy = {
        let mut c = cfg();
        c.profile.nic.unreliable_loss = 0.02;
        c
    };
    let (sys_lossless, clean) = measure(spawn_herd, &cfg());
    let (sys_lossy, with_loss) = measure(spawn_herd, &lossy);
    assert!(sys_lossy.stats.completed.get() > 1000, "system stalled");
    assert!(
        with_loss < clean,
        "loss must cost throughput: {clean:.2} -> {with_loss:.2}"
    );
    // Correctness: misses stay negligible (responses are not garbled).
    let miss = sys_lossy.stats.misses.get() as f64 / sys_lossy.stats.gets.get().max(1) as f64;
    assert!(miss < 0.05, "miss fraction {miss}");
    let _ = sys_lossless;
}

#[test]
fn erew_beats_shared_lock_under_writes() {
    // The ablation DESIGN.md calls out: EREW partitioning vs the same
    // store behind one lock. Under write-intensive load the serialized
    // section caps the shared variant well below Jakiro.
    let write_heavy = {
        let mut c = cfg();
        c.spec.mix = OpMix::WRITE_INTENSIVE;
        c
    };
    let (_, erew) = measure(spawn_jakiro, &write_heavy);
    let (_, shared) = measure(spawn_jakiro_shared, &write_heavy);
    assert!(
        erew > 1.1 * shared,
        "EREW should beat the shared-lock store: {erew:.2} vs {shared:.2}"
    );
}

#[test]
fn shared_lock_variant_still_serves_correctly() {
    let skewed = {
        let mut c = cfg();
        c.spec.keys = KeyDist::Zipf(0.99);
        c
    };
    let (sys, mops) = measure(spawn_jakiro_shared, &skewed);
    assert!(mops > 0.5, "{mops}");
    let miss = sys.stats.misses.get() as f64 / sys.stats.gets.get().max(1) as f64;
    assert!(miss < 0.05, "miss fraction {miss}");
}

#[test]
fn farm_style_wins_reads_but_collapses_on_writes() {
    use rfp_kvstore::spawn_farm;
    // §5's FaRM discussion: higher read-mostly throughput than Jakiro
    // (one-read neighborhood GETs), at a bandwidth premium — and bound
    // by server out-bound once PUTs matter.
    let read_heavy = cfg();
    let (farm_sys, farm_reads) = measure(spawn_farm, &read_heavy);
    let (_, jakiro_reads) = measure(spawn_jakiro, &read_heavy);
    assert!(
        farm_reads > jakiro_reads,
        "FaRM-style should win at 95% GET: {farm_reads:.2} vs {jakiro_reads:.2}"
    );
    // One op per GET, whole neighborhoods of bytes.
    let ops_per_get =
        farm_sys.stats.bypass_ops.get() as f64 / farm_sys.stats.gets.get().max(1) as f64;
    assert!((0.99..1.2).contains(&ops_per_get), "{ops_per_get:.3}");

    let balanced = {
        let mut c = cfg();
        c.spec.mix = OpMix::BALANCED;
        c
    };
    let (_, farm_balanced) = measure(spawn_farm, &balanced);
    let (_, jakiro_balanced) = measure(spawn_jakiro, &balanced);
    assert!(
        jakiro_balanced > 2.0 * farm_balanced,
        "at 50% GET the PUT path caps FaRM-style: {jakiro_balanced:.2} vs {farm_balanced:.2}"
    );
}
