//! Whole-system validation: the four KV systems running on the paper's
//! cluster shape must reproduce the paper's ordering and ballpark
//! numbers (Jakiro ≈ 5.5 MOPS, ServerReply ≈ 2.1 MOPS, RDMA-Memcached
//! CPU-bound below that, Pilaf amplified GETs).

use rfp_kvstore::{
    spawn_jakiro, spawn_memcached, spawn_pilaf, spawn_server_reply_kv, KvSystem, SystemConfig,
};
use rfp_simnet::{SimSpan, Simulation};
use rfp_workload::{OpMix, WorkloadSpec};

/// Runs a spawned system through warm-up and a measurement window;
/// returns (system, MOPS).
fn measure(
    spawn: impl FnOnce(&mut Simulation, &SystemConfig) -> KvSystem,
    cfg: &SystemConfig,
    window: SimSpan,
) -> (KvSystem, f64) {
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn(&mut sim, cfg);
    sim.run_for(SimSpan::millis(1)); // warm-up
    sys.reset_measurements();
    sim.run_for(window);
    let mops = sys.stats.completed.get() as f64 / window.as_secs_f64() / 1e6;
    (sys, mops)
}

fn small_cfg() -> SystemConfig {
    SystemConfig {
        spec: WorkloadSpec {
            key_count: 2_000,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    }
}

#[test]
fn jakiro_correctness_and_low_miss_rate() {
    let cfg = SystemConfig {
        client_machines: 2,
        clients_per_machine: 2,
        ..small_cfg()
    };
    let (sys, mops) = measure(spawn_jakiro, &cfg, SimSpan::millis(3));
    let s = &sys.stats;
    assert!(
        s.completed.get() > 500,
        "too few ops: {}",
        s.completed.get()
    );
    assert_eq!(s.completed.get(), s.gets.get() + s.puts.get());
    // Everything is preloaded; misses only from rare LRU evictions.
    let miss_frac = s.misses.get() as f64 / s.gets.get().max(1) as f64;
    assert!(miss_frac < 0.05, "miss fraction {miss_frac}");
    assert!(mops > 0.5, "4 clients should push >0.5 MOPS, got {mops:.2}");
    // Latency in the microseconds range.
    let p50 = s.latency.percentile(50.0).unwrap();
    assert!(
        (2_000..20_000).contains(&p50.as_nanos()),
        "odd median latency {p50}"
    );
}

#[test]
fn jakiro_peak_matches_paper_ballpark() {
    // Paper §4.4.1: 6 server threads, 35 clients, 32 B values, uniform
    // 95% GET ⇒ 5.5 MOPS, ≈ half the NIC's in-bound peak.
    let cfg = small_cfg();
    let (sys, mops) = measure(spawn_jakiro, &cfg, SimSpan::millis(4));
    assert!(
        (4.6..6.2).contains(&mops),
        "Jakiro peak should be ≈5.5 MOPS, got {mops:.2}"
    );
    // §4.3: ≈2.005 server in-bound ops per request.
    let rounds = sys.inbound_ops_per_request();
    assert!(
        (1.9..2.4).contains(&rounds),
        "in-bound ops/request should be ≈2.005, got {rounds:.3}"
    );
}

#[test]
fn server_reply_is_outbound_bound() {
    let cfg = small_cfg();
    let (sys, mops) = measure(spawn_server_reply_kv, &cfg, SimSpan::millis(4));
    assert!(
        (1.5..2.2).contains(&mops),
        "ServerReply should cap near 2.1 MOPS, got {mops:.2}"
    );
    // The server really pushes every response out-bound.
    let out = sys.server_machine.nic().counters().outbound_ops;
    assert!(
        out as f64 >= 0.95 * sys.stats.completed.get() as f64,
        "out-bound ops {out} vs {} requests",
        sys.stats.completed.get()
    );
}

#[test]
fn memcached_is_cpu_bound_below_server_reply() {
    let cfg = SystemConfig {
        server_threads: 16,
        ..small_cfg()
    };
    let (sys, mops) = measure(spawn_memcached, &cfg, SimSpan::millis(4));
    assert!(
        (0.8..1.7).contains(&mops),
        "RDMA-Memcached should be CPU-bound ≈1.3 MOPS, got {mops:.2}"
    );
    // NIC out-bound is NOT saturated (CPU is the bottleneck).
    let out = sys.server_machine.nic().counters().outbound_ops;
    let out_mops = out as f64 / 0.004 / 1e6;
    assert!(
        out_mops < 2.0,
        "out-bound should be under-utilised: {out_mops:.2}"
    );
}

#[test]
fn paper_ordering_jakiro_over_server_reply_over_memcached() {
    let cfg = small_cfg();
    let (_, jakiro) = measure(spawn_jakiro, &cfg, SimSpan::millis(3));
    let (_, sr) = measure(spawn_server_reply_kv, &cfg, SimSpan::millis(3));
    let mcd_cfg = SystemConfig {
        server_threads: 16,
        ..small_cfg()
    };
    let (_, mcd) = measure(spawn_memcached, &mcd_cfg, SimSpan::millis(3));
    assert!(
        jakiro > 1.6 * sr,
        "Jakiro {jakiro:.2} vs ServerReply {sr:.2}"
    );
    assert!(sr > mcd, "ServerReply {sr:.2} vs Memcached {mcd:.2}");
    // Figure 12's headline: ≈160% improvement of Jakiro over ServerReply.
    let gain = jakiro / sr;
    assert!((1.8..3.5).contains(&gain), "gain {gain:.2}");
}

#[test]
fn pilaf_gets_are_amplified_and_slower_than_jakiro() {
    // Figure 11's setting: 50% GET. Pilaf GETs pay multiple one-sided
    // reads; PUTs take the server-reply path.
    let cfg = SystemConfig {
        spec: WorkloadSpec {
            key_count: 2_000,
            mix: OpMix::BALANCED,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    };
    let (pilaf_sys, pilaf) = measure(spawn_pilaf, &cfg, SimSpan::millis(4));
    let (_, jakiro) = measure(spawn_jakiro, &cfg, SimSpan::millis(4));
    let ops_per_get =
        pilaf_sys.stats.bypass_ops.get() as f64 / pilaf_sys.stats.gets.get().max(1) as f64;
    assert!(
        (1.8..4.0).contains(&ops_per_get),
        "bypass GETs should take 2-4 one-sided ops (Pilaf: 3.2), got {ops_per_get:.2}"
    );
    assert!(
        jakiro > 1.5 * pilaf,
        "Jakiro {jakiro:.2} should clearly beat Pilaf {pilaf:.2} at 50% GET"
    );
}

#[test]
fn jakiro_throughput_holds_across_get_ratios() {
    // Figure 16: Jakiro's peak is mix-insensitive (server CPU is not
    // the bottleneck and EREW needs no write coordination).
    let mut results = Vec::new();
    for mix in [
        OpMix::READ_INTENSIVE,
        OpMix::BALANCED,
        OpMix::WRITE_INTENSIVE,
    ] {
        let cfg = SystemConfig {
            spec: WorkloadSpec {
                key_count: 2_000,
                mix,
                ..WorkloadSpec::paper_default()
            },
            ..SystemConfig::default()
        };
        let (_, mops) = measure(spawn_jakiro, &cfg, SimSpan::millis(3));
        results.push(mops);
    }
    let max = results.iter().cloned().fold(f64::MIN, f64::max);
    let min = results.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        min > 0.85 * max,
        "Jakiro should be flat across mixes: {results:?}"
    );
}

#[test]
fn delete_and_multiget_round_trip_over_rfp() {
    use rfp_core::{connect, serve_loop, RfpConfig};
    use rfp_kvstore::{KvRequest, KvResponse, Partition};
    use rfp_rnic::{Cluster, ClusterProfile};
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut sim = Simulation::new(2);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));
    let (client, conn) = connect(
        &cm,
        &sm,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig::default(),
    );
    let part = Rc::new(RefCell::new(Partition::new(64)));
    part.borrow_mut().put(b"alpha", b"1");
    part.borrow_mut().put(b"beta", b"2");
    part.borrow_mut().put(b"gamma", b"3");
    let p2 = Rc::clone(&part);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        move |req: &[u8]| {
            let parsed = KvRequest::decode(req).expect("well-formed");
            let (resp, work) =
                rfp_kvstore::systems::apply_to_partition(&mut p2.borrow_mut(), &parsed);
            (resp.encode(), work)
        },
        SimSpan::nanos(100),
    ));

    let ct = cm.thread("client");
    let done = Rc::new(std::cell::Cell::new(false));
    let d = Rc::clone(&done);
    sim.spawn(async move {
        // Multi-get hits and misses in order.
        let req = KvRequest::MultiGet {
            keys: vec![b"alpha", b"missing", b"gamma"],
        }
        .encode();
        let out = client.call(&ct, &req).await;
        match KvResponse::decode(&out.data).expect("response") {
            KvResponse::Values(vs) => {
                assert_eq!(vs.len(), 3);
                assert_eq!(vs[0].as_deref(), Some(&b"1"[..]));
                assert_eq!(vs[1], None);
                assert_eq!(vs[2].as_deref(), Some(&b"3"[..]));
            }
            other => panic!("expected Values, got {other:?}"),
        }

        // Delete an existing key, then a missing one.
        let del = KvRequest::Delete { key: b"beta" }.encode();
        let out = client.call(&ct, &del).await;
        assert_eq!(
            KvResponse::decode(&out.data).expect("response"),
            KvResponse::Deleted(true)
        );
        let out = client.call(&ct, &del).await;
        assert_eq!(
            KvResponse::decode(&out.data).expect("response"),
            KvResponse::Deleted(false)
        );

        // The deleted key is really gone.
        let get = KvRequest::Get { key: b"beta" }.encode();
        let out = client.call(&ct, &get).await;
        assert_eq!(
            KvResponse::decode(&out.data).expect("response"),
            KvResponse::NotFound
        );
        d.set(true);
    });
    sim.run_for(SimSpan::millis(2));
    assert!(done.get());
    assert!(part.borrow_mut().get(b"beta").is_none());
}

#[test]
fn multiget_amortizes_round_trips() {
    use rfp_core::{connect, serve_loop, RfpConfig};
    use rfp_kvstore::{KvRequest, KvResponse, Partition};
    use rfp_rnic::{Cluster, ClusterProfile};
    use std::cell::RefCell;
    use std::rc::Rc;

    // Compare N single GETs against one N-key multi-get: the batched
    // form needs far fewer server in-bound ops (RFP amortises the
    // request WRITE and lets one fetch carry all values).
    let run = |batched: bool| -> (u64, u64) {
        let mut sim = Simulation::new(3);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let (cm, sm) = (cluster.machine(0), cluster.machine(1));
        let (client, conn) = connect(
            &cm,
            &sm,
            cluster.qp(0, 1),
            cluster.qp(1, 0),
            RfpConfig {
                fetch_size: 1024,
                ..RfpConfig::default()
            },
        );
        let part = Rc::new(RefCell::new(Partition::new(64)));
        let keys: Vec<Vec<u8>> = (0..16u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            part.borrow_mut()
                .put(k, b"batched-value-32-bytes-payload!!");
        }
        let st = sm.thread("server");
        sim.spawn(serve_loop(
            st,
            vec![Rc::new(conn)],
            move |req: &[u8]| {
                let parsed = KvRequest::decode(req).expect("well-formed");
                let (resp, work) =
                    rfp_kvstore::systems::apply_to_partition(&mut part.borrow_mut(), &parsed);
                (resp.encode(), work)
            },
            SimSpan::nanos(100),
        ));
        let ct = cm.thread("client");
        let h = sim.handle();
        let elapsed = Rc::new(std::cell::Cell::new(0u64));
        let e = Rc::clone(&elapsed);
        sim.spawn(async move {
            let t0 = h.now();
            if batched {
                let req = KvRequest::MultiGet {
                    keys: keys.iter().map(Vec::as_slice).collect(),
                }
                .encode();
                let out = client.call(&ct, &req).await;
                match KvResponse::decode(&out.data).expect("response") {
                    KvResponse::Values(vs) => assert_eq!(vs.iter().flatten().count(), 16),
                    other => panic!("{other:?}"),
                }
            } else {
                for k in &keys {
                    let req = KvRequest::Get { key: k }.encode();
                    let out = client.call(&ct, &req).await;
                    assert!(matches!(
                        KvResponse::decode(&out.data).expect("response"),
                        KvResponse::Found(_)
                    ));
                }
            }
            e.set((h.now() - t0).as_nanos());
        });
        sim.run_for(SimSpan::millis(2));
        (sm.nic().counters().inbound_ops, elapsed.get())
    };
    let (single_ops, single_ns) = run(false);
    let (batch_ops, batch_ns) = run(true);
    assert!(
        batch_ops * 4 < single_ops,
        "multi-get should slash in-bound ops: {single_ops} -> {batch_ops}"
    );
    assert!(
        batch_ns * 3 < single_ns,
        "multi-get should slash latency: {single_ns} -> {batch_ns}"
    );
}

#[test]
fn erew_load_imbalance_under_skew_is_bounded() {
    // §4.4.3: "Although the most popular key is about 10^5 times more
    // often than the average key..., the load of the most loaded server
    // thread is <25% more than that of the thread with the least load,
    // in the case of launching six server threads." The paper's key
    // space is 128M; with a larger simulated population the head key's
    // share shrinks toward the paper's regime, so the imbalance bound
    // holds.
    let cfg = SystemConfig {
        spec: WorkloadSpec {
            key_count: 200_000,
            ..WorkloadSpec::paper_skewed()
        },
        ..SystemConfig::default()
    };
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn_jakiro(&mut sim, &cfg);
    sim.run_for(SimSpan::millis(1));
    sys.reset_measurements();
    sim.run_for(SimSpan::millis(4));
    let served = sys.served_per_thread();
    assert_eq!(served.len(), 6);
    let max = *served.iter().max().expect("6 threads");
    let min = *served.iter().min().expect("6 threads");
    assert!(min > 0, "every thread must serve: {served:?}");
    let imbalance = max as f64 / min as f64;
    assert!(
        imbalance < 1.6,
        "EREW imbalance under Zipf(.99) should be modest (paper: <1.25 \
         at 128M keys): {imbalance:.2} from {served:?}"
    );
    // And the imbalance does not cost throughput: the NIC is still the
    // bottleneck (cross-checked by jakiro peak tests above).
}

#[test]
fn fleet_mux_serves_many_logicals_over_few_conns() {
    use rfp_core::{OverloadConfig, RfpConfig};
    use rfp_kvstore::{spawn_fleet_kv, FleetConfig};

    let cfg = SystemConfig {
        rfp: RfpConfig {
            overload: OverloadConfig {
                enabled: true,
                ..OverloadConfig::default()
            },
            ..SystemConfig::default().rfp
        },
        ..small_cfg()
    };
    let fleet = FleetConfig {
        logical_clients: 400,
        physical_conns: 12,
        poller_groups: 3,
        tenants: 4,
        drivers: 24,
        ..FleetConfig::default()
    };
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn_fleet_kv(&mut sim, &cfg, &fleet);
    sim.run_for(SimSpan::millis(2));
    sys.reset_measurements();
    sim.run_for(SimSpan::millis(8));

    let done = sys.stats.completed.get();
    assert!(done > 1_000, "fleet must make progress: {done}");
    // 400 logical clients rode 12 physical conns over one QP pair per
    // client machine.
    let logical: u32 = sys.muxes.iter().map(|m| m.logical_count()).sum();
    assert_eq!(logical, 400);
    assert!(sys.server_machine.qp_endpoints() <= 2 * sys.muxes.len() as u64);
    // Per-tenant accounting adds up and every tenant progressed.
    let per_tenant = sys.tenant_goodput();
    assert_eq!(per_tenant.iter().sum::<u64>(), done);
    for (t, &g) in per_tenant.iter().enumerate() {
        assert!(g > 0, "tenant {t} starved: {per_tenant:?}");
    }
    // Scan accounting flowed from the tenant-aware poller groups.
    let snap = sys.registry.snapshot();
    let scans = snap.scalar("serve.scan.conns").unwrap_or(0.0);
    assert!(scans > 0.0, "poller groups must book scan work");
    // Per-tenant health rolled up in the hub.
    let report = sys.tenant_health.report(sim.now());
    assert_eq!(report.conns.len(), 4, "one health window per tenant");
}
