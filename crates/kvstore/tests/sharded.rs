//! Scale-out tests: sharded Jakiro across multiple server machines.

use rfp_kvstore::{spawn_sharded_jakiro, SystemConfig};
use rfp_simnet::{SimSpan, Simulation};
use rfp_workload::WorkloadSpec;

fn measure(servers: usize, client_machines: usize, clients_per: usize) -> (f64, f64, u64) {
    let cfg = SystemConfig {
        client_machines,
        clients_per_machine: clients_per,
        spec: WorkloadSpec {
            key_count: 4_000,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    };
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn_sharded_jakiro(&mut sim, &cfg, servers);
    sim.run_for(SimSpan::millis(1));
    sys.reset_measurements();
    let window = SimSpan::millis(4);
    sim.run_for(window);
    let mops = sys.stats.completed.get() as f64 / window.as_secs_f64() / 1e6;
    (
        mops,
        sys.inbound_ops_per_request(),
        sys.server_outbound_ops(),
    )
}

#[test]
fn one_shard_matches_single_server_jakiro() {
    let (mops, rounds, out) = measure(1, 7, 5);
    assert!((4.6..6.2).contains(&mops), "single shard {mops:.2}");
    assert!((1.9..2.2).contains(&rounds), "rounds {rounds:.3}");
    assert_eq!(out, 0, "fast path stays in-bound-only");
}

#[test]
fn two_shards_nearly_double_throughput() {
    // With enough clients to saturate both server NICs, aggregate
    // throughput scales with shards (each NIC is an independent
    // in-bound pipe).
    let (one, _, _) = measure(1, 7, 5);
    // 14 client machines × 5 threads: enough aggregate client out-bound
    // (at ≤5 threads/NIC the issuing contention penalty stays small) to
    // saturate both server NICs.
    let (two, rounds, out) = measure(2, 14, 5);
    assert!(
        two > 1.7 * one,
        "2 shards should ≈2x one: {one:.2} -> {two:.2}"
    );
    assert!((1.9..2.2).contains(&rounds), "rounds stay ≈2: {rounds:.3}");
    assert_eq!(out, 0);
}

#[test]
fn sharding_does_not_break_correctness() {
    let cfg = SystemConfig {
        client_machines: 3,
        clients_per_machine: 2,
        spec: WorkloadSpec {
            key_count: 4_000,
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    };
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn_sharded_jakiro(&mut sim, &cfg, 3);
    sim.run_for(SimSpan::millis(4));
    let s = &sys.stats;
    assert!(s.completed.get() > 1_000);
    let miss = s.misses.get() as f64 / s.gets.get().max(1) as f64;
    assert!(miss < 0.05, "miss fraction {miss} across shards");
}
