//! Full-system assembly of the four key-value stores the paper
//! evaluates, on a simulated cluster shaped like its testbed (one server
//! machine plus client machines behind one switch, §4.2).
//!
//! * [`spawn_jakiro`] — Jakiro: RFP transport, EREW-partitioned bucket
//!   table, requests routed to the owning server thread by key.
//! * [`spawn_server_reply_kv`] — ServerReply: identical store and
//!   routing, but the server pushes results with out-bound WRITE.
//! * [`spawn_memcached`] — RDMA-Memcached-like: server-reply transport,
//!   shared LRU store behind a lock, per-thread hot-key caches.
//! * [`spawn_pilaf`] — Pilaf-like: GETs are client-driven one-sided
//!   reads over the cuckoo/CRC store, PUTs go through server-reply RPC.
//!
//! Every spawner returns a [`KvSystem`] whose client loops run forever;
//! the caller warms up, calls [`KvSystem::reset_measurements`], runs the
//! measurement window, and reads [`KvStats`].

use std::rc::Rc;

use rfp_core::{
    connect, serve_loop, serve_loop_tenant, shard_conns, MuxConfig, RespStatus, RfpClient,
    RfpConfig, RfpMux, RfpServerConn, RfpTelemetry, TenantId, RESP_HDR,
};
use rfp_paradigms::{sr_connect, BypassClient};
use rfp_rnic::{Cluster, ClusterProfile, Machine, ThreadCtx};
use rfp_simnet::{
    Counter, HealthHub, Histogram, MetricsRegistry, SimSpan, Simulation, SpanRecorder,
};
use rfp_workload::{Op, WorkloadSpec};

use crate::bucket::Partition;
use crate::cuckoo::{bypass_get, PilafStore};
use crate::hash::partition_of;
use crate::mcd::{McdCosts, McdStore};
use crate::proto::{KvRequest, KvResponse};

use std::cell::RefCell;

/// Simulated CPU cost of one Jakiro/ServerReply GET (hash + copy).
pub const KV_GET_WORK: SimSpan = SimSpan::nanos(150);
/// Simulated CPU cost of one Jakiro/ServerReply PUT.
pub const KV_PUT_WORK: SimSpan = SimSpan::nanos(200);

/// Shared measurement bundle, updated by every client loop.
///
/// The instruments are `Rc`-shared so a [`MetricsRegistry`] can export
/// them under the `kv.*` namespace (see [`KvStats::register_into`]).
#[derive(Default)]
pub struct KvStats {
    /// Completed requests.
    pub completed: Rc<Counter>,
    /// Completed GETs.
    pub gets: Rc<Counter>,
    /// Completed PUTs.
    pub puts: Rc<Counter>,
    /// GETs that found no value.
    pub misses: Rc<Counter>,
    /// End-to-end request latencies.
    pub latency: Rc<Histogram>,
    /// One-sided ops spent by bypass GETs (Pilaf only).
    pub bypass_ops: Rc<Counter>,
    /// Checksum-failure rereads observed by bypass GETs (Pilaf only).
    pub crc_retries: Rc<Counter>,
    /// Requests answered `Busy` by admission control (overload only).
    pub rejected_busy: Rc<Counter>,
    /// Requests shed for a missed deadline (overload only).
    pub rejected_shed: Rc<Counter>,
    /// Corrupt fetched images discarded and refetched by the RFP
    /// integrity layer before the response surfaced (integrity only).
    pub integrity_retries: Rc<Counter>,
}

impl KvStats {
    /// Clears everything (discard warm-up).
    pub fn reset(&self) {
        self.completed.reset();
        self.gets.reset();
        self.puts.reset();
        self.misses.reset();
        self.latency.reset();
        self.bypass_ops.reset();
        self.crc_retries.reset();
        self.rejected_busy.reset();
        self.rejected_shed.reset();
        self.integrity_retries.reset();
    }

    /// Exposes every instrument in `registry` under `kv.*`.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_counter("kv.completed", &self.completed);
        registry.register_counter("kv.gets", &self.gets);
        registry.register_counter("kv.puts", &self.puts);
        registry.register_counter("kv.misses", &self.misses);
        registry.register_histogram("kv.latency", &self.latency);
        registry.register_counter("kv.bypass.ops", &self.bypass_ops);
        registry.register_counter("kv.bypass.crc_retries", &self.crc_retries);
    }

    /// Additionally exposes the overload rejection counters. Called only
    /// when the subsystem is on, so runs without it keep their exported
    /// metric rows unchanged.
    pub fn register_overload_into(&self, registry: &MetricsRegistry) {
        registry.register_counter("kv.rejected.busy", &self.rejected_busy);
        registry.register_counter("kv.rejected.shed", &self.rejected_shed);
    }

    /// Additionally exposes the fetch-integrity counter. Like the
    /// overload registration, called only when the integrity layer is
    /// on, so integrity-off runs export the same metric rows as before.
    pub fn register_integrity_into(&self, registry: &MetricsRegistry) {
        registry.register_counter("kv.integrity_retries", &self.integrity_retries);
    }
}

/// Experiment configuration shared by all four systems.
#[derive(Clone)]
pub struct SystemConfig {
    /// Server threads (= cores) on the server machine.
    pub server_threads: usize,
    /// Client machines.
    pub client_machines: usize,
    /// Client threads per client machine.
    pub clients_per_machine: usize,
    /// Workload shape. `spec.key_count` doubles as the preload size.
    pub spec: WorkloadSpec,
    /// RFP tuning (fetch size, retry threshold, switch behaviour…).
    pub rfp: RfpConfig,
    /// Artificial extra process time added to every request (the `P`
    /// swept by Figure 14, produced with RDTSC spinning in the paper).
    pub extra_process: SimSpan,
    /// Cluster timing profile.
    pub profile: ClusterProfile,
    /// Memcached comparator cost model.
    pub mcd_costs: McdCosts,
    /// Server threads dedicated to PUTs in the Pilaf comparator.
    pub pilaf_put_threads: usize,
    /// Probability that a request suffers an unexpectedly long process
    /// time (the paper measures ~0.2% of such outliers, §4.4.2; they
    /// create the latency tail of Figure 13 and the retry tail of
    /// Table 3, and are what the mode-switch hysteresis guards against).
    pub outlier_prob: f64,
    /// Extra process time of an outlier request, drawn uniformly from
    /// this range.
    pub outlier_extra: (SimSpan, SimSpan),
    /// Mean exponentially-distributed client think time between
    /// requests. `ZERO` (the default, and the paper's methodology) is a
    /// closed loop at full tilt; non-zero values sweep offered load for
    /// latency-vs-load curves.
    pub think_time: SimSpan,
    /// Master seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        let spec = WorkloadSpec {
            // Scaled-down key space: the paper preloads 128 M pairs on a
            // 96 GB machine; simulation keeps the same access pattern
            // over a smaller population (documented in DESIGN.md).
            key_count: 20_000,
            ..WorkloadSpec::paper_default()
        };
        SystemConfig {
            server_threads: 6,
            client_machines: 7,
            clients_per_machine: 5,
            spec,
            rfp: RfpConfig {
                check_cpu: SimSpan::nanos(30),
                post_cpu: SimSpan::nanos(50),
                ..RfpConfig::default()
            },
            extra_process: SimSpan::ZERO,
            profile: ClusterProfile::paper_testbed(),
            mcd_costs: McdCosts::default(),
            pilaf_put_threads: 2,
            outlier_prob: 0.002,
            outlier_extra: (SimSpan::micros(3), SimSpan::micros(10)),
            think_time: SimSpan::ZERO,
            seed: 42,
        }
    }
}

/// Deterministic generator of the rare slow-request outliers.
struct OutlierGen {
    rng: rand::rngs::StdRng,
    prob: f64,
    min_ns: u64,
    max_ns: u64,
}

impl OutlierGen {
    fn new(cfg: &SystemConfig, stream: u64) -> Self {
        use rand::SeedableRng;
        OutlierGen {
            rng: rand::rngs::StdRng::seed_from_u64(rfp_simnet::derive_seed(
                cfg.seed,
                0xBAD0 + stream,
            )),
            prob: cfg.outlier_prob,
            min_ns: cfg.outlier_extra.0.as_nanos(),
            max_ns: cfg
                .outlier_extra
                .1
                .as_nanos()
                .max(cfg.outlier_extra.0.as_nanos() + 1),
        }
    }

    /// Extra process time for the next request (usually zero).
    fn draw(&mut self) -> SimSpan {
        use rand::Rng;
        if self.prob > 0.0 && self.rng.gen::<f64>() < self.prob {
            SimSpan::nanos(self.rng.gen_range(self.min_ns..self.max_ns))
        } else {
            SimSpan::ZERO
        }
    }
}

impl SystemConfig {
    /// Total client threads.
    pub fn total_clients(&self) -> usize {
        self.client_machines * self.clients_per_machine
    }

    /// Buffer capacities sized for this workload.
    pub(crate) fn rfp_sized(&self) -> RfpConfig {
        self.sized_rfp()
    }

    fn sized_rfp(&self) -> RfpConfig {
        let max_val = self.spec.values.max();
        // Integrity-stamped responses carry the 32-byte extended header
        // plus the 8-byte trailing canary.
        let resp_overhead = if self.rfp.integrity.enabled {
            rfp_core::RESP_HDR_EXT + rfp_core::RESP_TRAILER
        } else {
            RESP_HDR
        };
        let resp = (resp_overhead + 5 + max_val)
            .next_multiple_of(64)
            .max(256)
            .max(self.rfp.fetch_size);
        // Deadline-stamped requests carry the 16-byte extended header.
        let hdr = if self.rfp.overload.enabled {
            rfp_core::REQ_HDR_EXT
        } else {
            rfp_core::REQ_HDR
        };
        let req = (hdr + 7 + self.spec.key_len + max_val)
            .next_multiple_of(64)
            .max(256);
        RfpConfig {
            resp_capacity: resp,
            req_capacity: req,
            ..self.rfp.clone()
        }
    }
}

/// Retained finished request spans per system: enough to keep the tail
/// of a measurement window without unbounded memory growth.
const SPAN_CAPACITY: usize = 4096;

/// One registry + span ring per system: NIC engines and the `kv.*`
/// stats are registered up front; RFP connections add their own
/// `rfp.client.<n>.*` instruments lazily. When the base RFP config
/// carries a flight recorder, the cluster NICs report wire-level events
/// into it as well.
fn system_telemetry(
    cluster: &Cluster,
    stats: &KvStats,
    rfp: &RfpConfig,
) -> (MetricsRegistry, SpanRecorder) {
    let registry = MetricsRegistry::new();
    cluster.attach_metrics(&registry);
    stats.register_into(&registry);
    if let Some(recorder) = &rfp.recorder {
        cluster.attach_recorder(recorder);
    }
    (registry, SpanRecorder::new(SPAN_CAPACITY))
}

/// `base` specialised for client `idx`: instruments land under
/// `rfp.client.<idx>.*`, spans render on Chrome-trace row `idx`, and —
/// when a [`HealthHub`](rfp_simnet::HealthHub) is configured — health
/// samples land in the hub's connection `idx`.
fn client_rfp_cfg(
    base: &RfpConfig,
    registry: &MetricsRegistry,
    spans: &SpanRecorder,
    idx: usize,
) -> RfpConfig {
    RfpConfig {
        telemetry: Some(RfpTelemetry {
            registry: registry.clone(),
            spans: spans.clone(),
            prefix: format!("rfp.client.{idx}"),
            track: idx as u32,
        }),
        conn_id: idx as u32,
        ..base.clone()
    }
}

/// A running system: clients loop forever; sample the stats between
/// `run_for` windows.
pub struct KvSystem {
    /// The simulated cluster (machine 0 is the server).
    pub cluster: Cluster,
    /// Shared measurements.
    pub stats: Rc<KvStats>,
    /// Unified instrument registry (`nic.*`, `kv.*`, `rfp.client.*`).
    pub registry: MetricsRegistry,
    /// Finished request-lifecycle spans (RFP transports only).
    pub spans: SpanRecorder,
    /// The server machine.
    pub server_machine: Rc<Machine>,
    /// All client threads (for utilisation readings).
    pub client_threads: Vec<Rc<ThreadCtx>>,
    /// All RFP client endpoints (for retry/switch stats); empty for the
    /// bypass GET path.
    pub rfp_clients: Vec<Rc<RfpClient>>,
    /// Server-side connections grouped by owning server thread (empty
    /// for systems without RFP server endpoints); feeds the per-thread
    /// load-balance accounting of §4.4.3.
    pub server_conns: Vec<Vec<Rc<RfpServerConn>>>,
}

impl KvSystem {
    /// Discards warm-up: clears stats, NIC counters, utilisation
    /// windows and per-connection client stats.
    pub fn reset_measurements(&self) {
        self.stats.reset();
        for i in 0..self.cluster.len() {
            self.cluster.machine(i).nic().reset_counters();
        }
        for t in &self.client_threads {
            t.reset_utilization();
        }
        for c in &self.rfp_clients {
            c.stats().reset();
        }
        // Registered instruments overlap the resets above (same Rc
        // cells); this additionally clears client-connection counters
        // and the diff baseline, and drops warm-up spans.
        self.registry.reset();
        self.spans.reset();
    }

    /// Mean client CPU utilisation (Figure 15's metric).
    pub fn mean_client_utilization(&self) -> f64 {
        if self.client_threads.is_empty() {
            return 0.0;
        }
        self.client_threads
            .iter()
            .map(|t| t.utilization())
            .sum::<f64>()
            / self.client_threads.len() as f64
    }

    /// Requests served per server thread (for EREW load-balance checks:
    /// the paper finds the most-loaded thread <25% above the least under
    /// Zipf(.99), §4.4.3).
    pub fn served_per_thread(&self) -> Vec<u64> {
        self.server_conns
            .iter()
            .map(|conns| conns.iter().map(|c| c.served()).sum())
            .collect()
    }

    /// Server in-bound ops per completed request (§4.3's round-trip
    /// accounting; Jakiro measures 2.005).
    pub fn inbound_ops_per_request(&self) -> f64 {
        let ops = self.server_machine.nic().counters().inbound_ops;
        let done = self.stats.completed.get();
        if done == 0 {
            return 0.0;
        }
        ops as f64 / done as f64
    }
}

pub(crate) fn record_outcome(stats: &KvStats, op: &Op, resp: &KvResponse, latency: SimSpan) {
    stats.completed.incr();
    stats.latency.record(latency);
    match op {
        Op::Get { .. } => {
            stats.gets.incr();
            if matches!(resp, KvResponse::NotFound) {
                stats.misses.incr();
            }
        }
        Op::Put { .. } => stats.puts.incr(),
    }
}

/// Applies one decoded request to a bucket-table partition, returning
/// the response and the application CPU cost of serving it.
pub fn apply_to_partition(
    partition: &mut Partition,
    parsed: &KvRequest<'_>,
) -> (KvResponse, SimSpan) {
    match parsed {
        KvRequest::Get { key } => {
            let resp = match partition.get(key) {
                Some(v) => KvResponse::Found(v.to_vec()),
                None => KvResponse::NotFound,
            };
            (resp, KV_GET_WORK)
        }
        KvRequest::Put { key, value } => {
            partition.put(key, value);
            (KvResponse::Stored, KV_PUT_WORK)
        }
        KvRequest::Delete { key } => {
            let found = partition.remove(key).is_some();
            (KvResponse::Deleted(found), KV_PUT_WORK)
        }
        KvRequest::MultiGet { keys } => {
            let values = keys
                .iter()
                .map(|k| partition.get(k).map(<[u8]>::to_vec))
                .collect::<Vec<_>>();
            // One lookup's full cost plus a cheaper per-extra-key walk.
            let work = KV_GET_WORK + SimSpan::nanos(80) * (keys.len() as u64 - 1);
            (KvResponse::Values(values), work)
        }
    }
}

fn kv_handler(
    partition: Rc<RefCell<Partition>>,
    extra: SimSpan,
    mut outliers: OutlierGen,
) -> impl FnMut(&[u8]) -> (Vec<u8>, SimSpan) {
    move |req: &[u8]| {
        let parsed = KvRequest::decode(req).expect("client sent well-formed request");
        let jitter = outliers.draw();
        let (resp, work) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
        (resp.encode(), work + extra + jitter)
    }
}

/// Preloaded, EREW-partitioned bucket table (one partition per server
/// thread).
fn build_partitions(cfg: &SystemConfig) -> Vec<Rc<RefCell<Partition>>> {
    let per_part = (cfg.spec.key_count as usize * 2 / cfg.server_threads / 8).max(64);
    let parts: Vec<Rc<RefCell<Partition>>> = (0..cfg.server_threads)
        .map(|_| Rc::new(RefCell::new(Partition::new(per_part))))
        .collect();
    let mut gen = cfg.spec.generator(cfg.seed);
    for (key, value) in gen.preload(cfg.spec.key_count) {
        let p = partition_of(&key, cfg.server_threads);
        parts[p].borrow_mut().put(&key, &value);
    }
    parts
}

/// Common wiring for Jakiro and ServerReply-KV (which differ only in
/// transport pinning).
fn spawn_routed_kv(sim: &mut Simulation, cfg: &SystemConfig, server_reply: bool) -> KvSystem {
    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let (registry, spans) = system_telemetry(&cluster, &stats, &cfg.rfp);
    let partitions = build_partitions(cfg);
    let rfp_cfg = cfg.sized_rfp();
    // Overload control only guards the remote-fetch transport; the
    // server-reply comparator has no deadline-aware admission path.
    let overload = !server_reply && rfp_cfg.overload.enabled;
    if overload {
        stats.register_overload_into(&registry);
    }
    // Likewise integrity only guards the remote-fetch transport.
    if !server_reply && rfp_cfg.integrity.enabled {
        stats.register_integrity_into(&registry);
    }

    // Per server thread: the connections it polls.
    let mut server_conns: Vec<Vec<Rc<RfpServerConn>>> =
        (0..cfg.server_threads).map(|_| Vec::new()).collect();
    let mut rfp_clients = Vec::new();
    let mut client_threads = Vec::new();

    for m in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + m);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            // One connection per server thread (requests are routed to
            // the partition owner — EREW).
            let idx = m * cfg.clients_per_machine + t;
            let mut ccfg = client_rfp_cfg(&rfp_cfg, &registry, &spans, idx);
            if overload {
                // Decorrelate the per-client backoff jitter streams.
                ccfg.overload.seed = rfp_simnet::derive_seed(rfp_cfg.overload.seed, idx as u64);
            }
            let mut conns = Vec::with_capacity(cfg.server_threads);
            for sconns in server_conns.iter_mut() {
                let (cl, sc) = if server_reply {
                    sr_connect(
                        &client_m,
                        &server_m,
                        cluster.qp(1 + m, 0),
                        cluster.qp(0, 1 + m),
                        ccfg.clone(),
                    )
                } else {
                    connect(
                        &client_m,
                        &server_m,
                        cluster.qp(1 + m, 0),
                        cluster.qp(0, 1 + m),
                        ccfg.clone(),
                    )
                };
                let cl = Rc::new(cl);
                rfp_clients.push(Rc::clone(&cl));
                conns.push(cl);
                sconns.push(Rc::new(sc));
            }

            // The client loop.
            let spec = cfg.spec.clone();
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            let st = stats.clone();
            let nthreads = cfg.server_threads;
            let think = cfg.think_time;
            let window = rfp_cfg.window;
            // Pipelining rides the plain remote-fetch transport only:
            // the overload path is deadline-per-call and the
            // server-reply comparator has no fetch to batch.
            let pipelined = window > 1 && !overload && !server_reply;
            let h = sim.handle();
            sim.spawn(async move {
                use rand::{Rng, SeedableRng};
                let mut gen = spec.generator(seed);
                let mut pause_rng = rand::rngs::StdRng::seed_from_u64(rfp_simnet::derive_seed(
                    seed,
                    0x0074_6869_6E6B,
                ));
                loop {
                    if !think.is_zero() {
                        // Exponential think time ⇒ Poisson-ish offered
                        // load per client.
                        let u: f64 = pause_rng.gen_range(1e-9..1.0);
                        let pause = think.as_nanos() as f64 * -u.ln();
                        h.sleep(SimSpan::from_nanos_f64(pause)).await;
                    }
                    if pipelined {
                        // Multi-get pattern: draw one ring window's
                        // worth of ops, bucket them by partition owner,
                        // and drive each bucket through the pipelined
                        // driver — up to `W` calls ride one connection
                        // concurrently, their fetch polls sharing
                        // doorbells.
                        let ops: Vec<Op> = (0..window).map(|_| gen.next_op()).collect();
                        let mut buckets: Vec<Vec<usize>> =
                            (0..nthreads).map(|_| Vec::new()).collect();
                        for (i, op) in ops.iter().enumerate() {
                            buckets[partition_of(op.key(), nthreads)].push(i);
                        }
                        for (p, bucket) in buckets.iter().enumerate() {
                            if bucket.is_empty() {
                                continue;
                            }
                            let reqs: Vec<Vec<u8>> = bucket
                                .iter()
                                .map(|&i| match &ops[i] {
                                    Op::Get { key } => KvRequest::Get { key }.encode(),
                                    Op::Put { key, value } => {
                                        KvRequest::Put { key, value }.encode()
                                    }
                                })
                                .collect();
                            let outs = conns[p].call_pipelined(&thread, &reqs).await;
                            for (&i, out) in bucket.iter().zip(&outs) {
                                if out.info.integrity_retries > 0 {
                                    st.integrity_retries.add(out.info.integrity_retries as u64);
                                }
                                let resp = KvResponse::decode(&out.data).expect("server response");
                                record_outcome(&st, &ops[i], &resp, out.info.latency);
                            }
                        }
                        continue;
                    }
                    let op = gen.next_op();
                    let conn = &conns[partition_of(op.key(), nthreads)];
                    let req = match &op {
                        Op::Get { key } => KvRequest::Get { key }.encode(),
                        Op::Put { key, value } => KvRequest::Put { key, value }.encode(),
                    };
                    let t0 = h.now();
                    let out = if overload {
                        conn.call_overload(&thread, &req, None).await
                    } else {
                        conn.call(&thread, &req).await
                    };
                    if out.info.integrity_retries > 0 {
                        st.integrity_retries.add(out.info.integrity_retries as u64);
                    }
                    if out.info.status != RespStatus::Ok {
                        // Rejected under overload: no payload to decode,
                        // and rejections never count as goodput.
                        match out.info.status {
                            RespStatus::Busy => st.rejected_busy.incr(),
                            _ => st.rejected_shed.incr(),
                        }
                        continue;
                    }
                    let resp = KvResponse::decode(&out.data).expect("server response");
                    record_outcome(&st, &op, &resp, h.now() - t0);
                }
            });
        }
    }

    // The server threads.
    for (s, conns) in server_conns.iter().enumerate() {
        let thread = server_m.thread(format!("s{s}"));
        let handler = kv_handler(
            Rc::clone(&partitions[s]),
            cfg.extra_process,
            OutlierGen::new(cfg, s as u64),
        );
        sim.spawn(serve_loop(
            thread,
            conns.clone(),
            handler,
            SimSpan::nanos(100),
        ));
    }

    KvSystem {
        server_machine: server_m,
        cluster,
        stats,
        registry,
        spans,
        client_threads,
        rfp_clients,
        server_conns,
    }
}

/// Spawns Jakiro (RFP transport).
pub fn spawn_jakiro(sim: &mut Simulation, cfg: &SystemConfig) -> KvSystem {
    spawn_routed_kv(sim, cfg, false)
}

/// Spawns the ServerReply comparator (same store, out-bound replies).
pub fn spawn_server_reply_kv(sim: &mut Simulation, cfg: &SystemConfig) -> KvSystem {
    spawn_routed_kv(sim, cfg, true)
}

/// Spawns the RDMA-Memcached comparator: server-reply transport, shared
/// locked store, per-thread hot-key caches; clients are assigned to
/// server threads round-robin (any thread can serve any key).
pub fn spawn_memcached(sim: &mut Simulation, cfg: &SystemConfig) -> KvSystem {
    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let (registry, spans) = system_telemetry(&cluster, &stats, &cfg.rfp);
    let rfp_cfg = cfg.sized_rfp();

    let store = McdStore::new(
        (cfg.spec.key_count as usize * 2).max(1024),
        cfg.mcd_costs.clone(),
    );
    let mut gen = cfg.spec.generator(cfg.seed);
    for (key, value) in gen.preload(cfg.spec.key_count) {
        store.preload(key, value);
    }

    let mut server_conns: Vec<Vec<Rc<RfpServerConn>>> =
        (0..cfg.server_threads).map(|_| Vec::new()).collect();
    let mut rfp_clients = Vec::new();
    let mut client_threads = Vec::new();
    let mut client_idx = 0usize;

    for m in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + m);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            let (cl, sc) = sr_connect(
                &client_m,
                &server_m,
                cluster.qp(1 + m, 0),
                cluster.qp(0, 1 + m),
                client_rfp_cfg(&rfp_cfg, &registry, &spans, client_idx),
            );
            let cl = Rc::new(cl);
            rfp_clients.push(Rc::clone(&cl));
            server_conns[client_idx % cfg.server_threads].push(Rc::new(sc));
            client_idx += 1;

            let spec = cfg.spec.clone();
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            let st = stats.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let mut gen = spec.generator(seed);
                loop {
                    let op = gen.next_op();
                    let req = match &op {
                        Op::Get { key } => KvRequest::Get { key }.encode(),
                        Op::Put { key, value } => KvRequest::Put { key, value }.encode(),
                    };
                    let t0 = h.now();
                    let out = cl.call(&thread, &req).await;
                    let resp = KvResponse::decode(&out.data).expect("server response");
                    record_outcome(&st, &op, &resp, h.now() - t0);
                }
            });
        }
    }

    for (s, conns) in server_conns.into_iter().enumerate() {
        if conns.is_empty() {
            continue;
        }
        let thread = server_m.thread(format!("s{s}"));
        let view = store.thread_view();
        let extra = cfg.extra_process;
        let mut outliers = OutlierGen::new(cfg, s as u64);
        sim.spawn(async move {
            loop {
                let mut served = false;
                for conn in &conns {
                    if let Some(req) = conn.try_recv(&thread).await {
                        let parsed = KvRequest::decode(&req).expect("well-formed request");
                        let jitter = outliers.draw();
                        let resp = match parsed {
                            KvRequest::Get { key } => match view.get(&thread, key).await {
                                Some(v) => KvResponse::Found(v),
                                None => KvResponse::NotFound,
                            },
                            KvRequest::Put { key, value } => {
                                view.put(&thread, key, value.to_vec()).await;
                                KvResponse::Stored
                            }
                            KvRequest::Delete { key } => {
                                KvResponse::Deleted(view.delete(&thread, key).await)
                            }
                            KvRequest::MultiGet { keys } => {
                                let mut values = Vec::with_capacity(keys.len());
                                for key in keys {
                                    values.push(view.get(&thread, key).await);
                                }
                                KvResponse::Values(values)
                            }
                        };
                        if !(extra + jitter).is_zero() {
                            thread.busy(extra + jitter).await;
                        }
                        conn.send(&thread, &resp.encode()).await;
                        served = true;
                    }
                }
                if !served {
                    thread.busy(SimSpan::nanos(100)).await;
                }
            }
        });
    }

    KvSystem {
        server_machine: server_m,
        cluster,
        stats,
        registry,
        spans,
        client_threads,
        rfp_clients,
        server_conns: Vec::new(),
    }
}

/// Spawns the Pilaf comparator: client-bypass GETs over the cuckoo/CRC
/// store (75%-filled, as the paper quotes), server-reply PUTs.
pub fn spawn_pilaf(sim: &mut Simulation, cfg: &SystemConfig) -> KvSystem {
    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let (registry, spans) = system_telemetry(&cluster, &stats, &cfg.rfp);
    let rfp_cfg = cfg.sized_rfp();

    // 75% fill: buckets = keys / 0.75.
    let buckets = (cfg.spec.key_count as usize * 4 / 3).max(64);
    let cell_size = (6 + cfg.spec.key_len + cfg.spec.values.max() + 8)
        .next_multiple_of(8)
        .max(64);
    let store = Rc::new(PilafStore::new(&server_m, buckets, buckets, cell_size));
    {
        // Preload via the server-local path (setup time, no simulation
        // cost).
        let mut gen = cfg.spec.generator(cfg.seed);
        for (key, value) in gen.preload(cfg.spec.key_count) {
            store
                .insert_local(&key, &value)
                .expect("preload fits the 75%-filled table");
        }
    }

    let mut put_conns: Vec<Vec<Rc<RfpServerConn>>> =
        (0..cfg.pilaf_put_threads).map(|_| Vec::new()).collect();
    let mut rfp_clients = Vec::new();
    let mut client_threads = Vec::new();
    let mut client_idx = 0usize;

    for m in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + m);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            let bypass = BypassClient::new(cluster.qp(1 + m, 0), cell_size.max(512));
            let (put_cl, put_sc) = sr_connect(
                &client_m,
                &server_m,
                cluster.qp(1 + m, 0),
                cluster.qp(0, 1 + m),
                client_rfp_cfg(&rfp_cfg, &registry, &spans, client_idx),
            );
            let put_cl = Rc::new(put_cl);
            rfp_clients.push(Rc::clone(&put_cl));
            put_conns[client_idx % cfg.pilaf_put_threads].push(Rc::new(put_sc));
            client_idx += 1;

            let spec = cfg.spec.clone();
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            let st = stats.clone();
            let view = store.view();
            let h = sim.handle();
            sim.spawn(async move {
                let mut gen = spec.generator(seed);
                loop {
                    let op = gen.next_op();
                    let t0 = h.now();
                    match &op {
                        Op::Get { key } => {
                            let got = bypass_get(&bypass, &thread, &view, key).await;
                            st.bypass_ops.add(got.ops as u64);
                            st.crc_retries.add(got.crc_retries as u64);
                            let resp = match got.value {
                                Some(v) => KvResponse::Found(v),
                                None => KvResponse::NotFound,
                            };
                            record_outcome(&st, &op, &resp, h.now() - t0);
                        }
                        Op::Put { key, value } => {
                            let req = KvRequest::Put { key, value }.encode();
                            let out = put_cl.call(&thread, &req).await;
                            let resp = KvResponse::decode(&out.data).expect("server response");
                            record_outcome(&st, &op, &resp, h.now() - t0);
                        }
                    }
                }
            });
        }
    }

    for (s, conns) in put_conns.into_iter().enumerate() {
        if conns.is_empty() {
            continue;
        }
        let thread = server_m.thread(format!("put{s}"));
        let store = Rc::clone(&store);
        let extra = cfg.extra_process;
        sim.spawn(async move {
            loop {
                let mut served = false;
                for conn in &conns {
                    if let Some(req) = conn.try_recv(&thread).await {
                        let parsed = KvRequest::decode(&req).expect("well-formed request");
                        let resp = match parsed {
                            KvRequest::Put { key, value } => {
                                // Torn-window PUT: racing bypass GETs
                                // may observe it and must CRC-retry.
                                match store.put(&thread, key, value).await {
                                    Ok(()) => KvResponse::Stored,
                                    Err(e) => panic!("pilaf put failed: {e}"),
                                }
                            }
                            KvRequest::Get { key } => {
                                // Fallback path (unused by the standard
                                // workload driver, but kept honest).
                                match store.lookup_local(key) {
                                    Some(v) => KvResponse::Found(v),
                                    None => KvResponse::NotFound,
                                }
                            }
                            KvRequest::Delete { key } => {
                                KvResponse::Deleted(store.remove_local(key))
                            }
                            KvRequest::MultiGet { keys } => KvResponse::Values(
                                keys.iter().map(|k| store.lookup_local(k)).collect(),
                            ),
                        };
                        if !extra.is_zero() {
                            thread.busy(extra).await;
                        }
                        conn.send(&thread, &resp.encode()).await;
                        served = true;
                    }
                }
                if !served {
                    thread.busy(SimSpan::nanos(100)).await;
                }
            }
        });
    }

    KvSystem {
        server_machine: server_m,
        cluster,
        stats,
        registry,
        spans,
        client_threads,
        rfp_clients,
        server_conns: Vec::new(),
    }
}

/// Spawns a HERD-style comparator (paper §5): same EREW bucket store as
/// Jakiro, but requests arrive as **UC** writes and responses leave as
/// **UD** sends — unreliable transports with client-side retransmission.
/// Faster than RC server-reply on message rate; unlike RFP, the server
/// burns out-bound ops and the application must tolerate loss.
pub fn spawn_herd(sim: &mut Simulation, cfg: &SystemConfig) -> KvSystem {
    use rfp_paradigms::{herd_connect, HerdConfig, HerdServerConn};
    use rfp_rnic::Transport;

    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let (registry, spans) = system_telemetry(&cluster, &stats, &cfg.rfp);
    let partitions = build_partitions(cfg);
    let herd_cfg = HerdConfig {
        req_capacity: (rfp_core::REQ_HDR + 7 + cfg.spec.key_len + cfg.spec.values.max())
            .next_multiple_of(64)
            .max(256),
        ..HerdConfig::default()
    };

    let mut server_conns: Vec<Vec<Rc<HerdServerConn>>> =
        (0..cfg.server_threads).map(|_| Vec::new()).collect();
    let mut client_threads = Vec::new();

    for m in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + m);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            let mut conns = Vec::with_capacity(cfg.server_threads);
            for sconns in server_conns.iter_mut() {
                let (cl, sc) = herd_connect(
                    &client_m,
                    &server_m,
                    cluster.qp_typed(1 + m, 0, Transport::Uc),
                    cluster.qp_typed(0, 1 + m, Transport::Ud),
                    herd_cfg.clone(),
                );
                conns.push(Rc::new(cl));
                sconns.push(Rc::new(sc));
            }

            let spec = cfg.spec.clone();
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            let st = stats.clone();
            let nthreads = cfg.server_threads;
            let h = sim.handle();
            sim.spawn(async move {
                let mut gen = spec.generator(seed);
                loop {
                    let op = gen.next_op();
                    let conn = &conns[partition_of(op.key(), nthreads)];
                    let req = match &op {
                        Op::Get { key } => KvRequest::Get { key }.encode(),
                        Op::Put { key, value } => KvRequest::Put { key, value }.encode(),
                    };
                    let t0 = h.now();
                    let Some(data) = conn.call(&thread, &req).await else {
                        // Retransmit budget exhausted (extreme loss);
                        // skip — an error RFP users never see.
                        continue;
                    };
                    let resp = KvResponse::decode(&data).expect("server response");
                    record_outcome(&st, &op, &resp, h.now() - t0);
                }
            });
        }
    }

    for (s, conns) in server_conns.into_iter().enumerate() {
        let thread = server_m.thread(format!("s{s}"));
        let partition = Rc::clone(&partitions[s]);
        let extra = cfg.extra_process;
        let mut outliers = OutlierGen::new(cfg, s as u64);
        sim.spawn(async move {
            loop {
                let mut served = false;
                for conn in &conns {
                    if let Some(req) = conn.try_recv(&thread).await {
                        let parsed = KvRequest::decode(&req).expect("well-formed");
                        let jitter = outliers.draw();
                        let (resp, base) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
                        let work = base + extra + jitter;
                        if !work.is_zero() {
                            thread.busy(work).await;
                        }
                        conn.send(&thread, &resp.encode()).await;
                        served = true;
                    }
                }
                if !served {
                    thread.busy(SimSpan::nanos(100)).await;
                }
            }
        });
    }

    KvSystem {
        server_machine: server_m,
        cluster,
        stats,
        registry,
        spans,
        client_threads,
        rfp_clients: Vec::new(),
        server_conns: Vec::new(),
    }
}

/// Spawns the EREW-ablation variant of Jakiro: the same store behind a
/// single shared lock accessed by all server threads (CREW-by-locking
/// instead of partitioning). Quantifies how much of Jakiro's mix- and
/// skew-insensitivity comes from the EREW design the paper adopts from
/// MICA/CPHash (§4.1).
pub fn spawn_jakiro_shared(sim: &mut Simulation, cfg: &SystemConfig) -> KvSystem {
    use rfp_simnet::SimLock;

    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let (registry, spans) = system_telemetry(&cluster, &stats, &cfg.rfp);
    let rfp_cfg = cfg.sized_rfp();

    // One shared partition, one global lock.
    let per_part = (cfg.spec.key_count as usize * 2 / 8).max(64);
    let store = Rc::new(RefCell::new(Partition::new(per_part)));
    let lock = SimLock::new();
    {
        let mut gen = cfg.spec.generator(cfg.seed);
        for (key, value) in gen.preload(cfg.spec.key_count) {
            store.borrow_mut().put(&key, &value);
        }
    }

    let mut server_conns: Vec<Vec<Rc<RfpServerConn>>> =
        (0..cfg.server_threads).map(|_| Vec::new()).collect();
    let mut rfp_clients = Vec::new();
    let mut client_threads = Vec::new();
    let mut client_idx = 0usize;

    for m in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + m);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            // Any server thread can serve any key: one connection per
            // client, assigned round-robin.
            let (cl, sc) = connect(
                &client_m,
                &server_m,
                cluster.qp(1 + m, 0),
                cluster.qp(0, 1 + m),
                client_rfp_cfg(&rfp_cfg, &registry, &spans, client_idx),
            );
            let cl = Rc::new(cl);
            rfp_clients.push(Rc::clone(&cl));
            server_conns[client_idx % cfg.server_threads].push(Rc::new(sc));
            client_idx += 1;

            let spec = cfg.spec.clone();
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            let st = stats.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let mut gen = spec.generator(seed);
                loop {
                    let op = gen.next_op();
                    let req = match &op {
                        Op::Get { key } => KvRequest::Get { key }.encode(),
                        Op::Put { key, value } => KvRequest::Put { key, value }.encode(),
                    };
                    let t0 = h.now();
                    let out = cl.call(&thread, &req).await;
                    let resp = KvResponse::decode(&out.data).expect("server response");
                    record_outcome(&st, &op, &resp, h.now() - t0);
                }
            });
        }
    }

    // The serialized hold approximates the lock-protected portion of a
    // shared-structure access: reads only touch a recency stamp, writes
    // reorder the structure (cf. the MemC3/Memcached scalability
    // discussion the paper cites in §4.4.1).
    const SHARED_GET_HOLD: SimSpan = SimSpan::nanos(150);
    const SHARED_PUT_HOLD: SimSpan = SimSpan::nanos(400);

    for (s, conns) in server_conns.into_iter().enumerate() {
        if conns.is_empty() {
            continue;
        }
        let thread = server_m.thread(format!("s{s}"));
        let store = Rc::clone(&store);
        let lock = lock.clone();
        let extra = cfg.extra_process;
        let mut outliers = OutlierGen::new(cfg, s as u64);
        sim.spawn(async move {
            loop {
                let mut served = false;
                for conn in &conns {
                    if let Some(req) = conn.try_recv(&thread).await {
                        let parsed = KvRequest::decode(&req).expect("well-formed");
                        let jitter = outliers.draw();
                        let hold = match &parsed {
                            KvRequest::Get { .. } => SHARED_GET_HOLD,
                            KvRequest::MultiGet { keys } => SHARED_GET_HOLD * keys.len() as u64,
                            KvRequest::Put { .. } | KvRequest::Delete { .. } => SHARED_PUT_HOLD,
                        };
                        let guard = lock.lock().await;
                        let (resp, _work) = apply_to_partition(&mut store.borrow_mut(), &parsed);
                        thread.busy(hold + extra + jitter).await;
                        drop(guard);
                        conn.send(&thread, &resp.encode()).await;
                        served = true;
                    }
                }
                if !served {
                    thread.busy(SimSpan::nanos(100)).await;
                }
            }
        });
    }

    KvSystem {
        server_machine: server_m,
        cluster,
        stats,
        registry,
        spans,
        client_threads,
        rfp_clients,
        server_conns: Vec::new(),
    }
}

/// Spawns a FaRM-style comparator (paper §5): hopscotch-hashed inline
/// cells read by clients in **one** neighborhood-sized READ per GET
/// (fewer server ops than Pilaf, many more bytes than RFP); PUTs take
/// the server-reply path, as in FaRM.
pub fn spawn_farm(sim: &mut Simulation, cfg: &SystemConfig) -> KvSystem {
    use crate::hopscotch::{farm_get, FarmStore};

    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let (registry, spans) = system_telemetry(&cluster, &stats, &cfg.rfp);
    let rfp_cfg = cfg.sized_rfp();

    let cell_size = (6 + cfg.spec.key_len + cfg.spec.values.max() + 8)
        .next_multiple_of(8)
        .max(64);
    // Hopscotch with H=8 sustains ~50% load before displacement fails;
    // FaRM trades table head-room for its one-read GETs.
    let buckets = (cfg.spec.key_count as usize * 2).max(64);
    let store = Rc::new(FarmStore::new(&server_m, buckets, cell_size));
    {
        let mut gen = cfg.spec.generator(cfg.seed);
        for (key, value) in gen.preload(cfg.spec.key_count) {
            store
                .insert_local(&key, &value)
                .expect("preload fits the 50%-loaded hopscotch table");
        }
    }

    let mut put_conns: Vec<Vec<Rc<RfpServerConn>>> =
        (0..cfg.pilaf_put_threads).map(|_| Vec::new()).collect();
    let mut rfp_clients = Vec::new();
    let mut client_threads = Vec::new();
    let mut client_idx = 0usize;

    for m in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + m);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            let scratch = (crate::hopscotch::NEIGHBORHOOD * cell_size).max(512);
            let bypass = BypassClient::new(cluster.qp(1 + m, 0), scratch);
            let (put_cl, put_sc) = sr_connect(
                &client_m,
                &server_m,
                cluster.qp(1 + m, 0),
                cluster.qp(0, 1 + m),
                client_rfp_cfg(&rfp_cfg, &registry, &spans, client_idx),
            );
            let put_cl = Rc::new(put_cl);
            rfp_clients.push(Rc::clone(&put_cl));
            put_conns[client_idx % cfg.pilaf_put_threads].push(Rc::new(put_sc));
            client_idx += 1;

            let spec = cfg.spec.clone();
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            let st = stats.clone();
            let view = store.view();
            let h = sim.handle();
            sim.spawn(async move {
                let mut gen = spec.generator(seed);
                loop {
                    let op = gen.next_op();
                    let t0 = h.now();
                    match &op {
                        Op::Get { key } => {
                            let got = farm_get(&bypass, &thread, &view, key).await;
                            st.bypass_ops.add(got.ops as u64);
                            st.crc_retries.add(got.crc_retries as u64);
                            let resp = match got.value {
                                Some(v) => KvResponse::Found(v),
                                None => KvResponse::NotFound,
                            };
                            record_outcome(&st, &op, &resp, h.now() - t0);
                        }
                        Op::Put { key, value } => {
                            let req = KvRequest::Put { key, value }.encode();
                            let out = put_cl.call(&thread, &req).await;
                            let resp = KvResponse::decode(&out.data).expect("server response");
                            record_outcome(&st, &op, &resp, h.now() - t0);
                        }
                    }
                }
            });
        }
    }

    for (s, conns) in put_conns.into_iter().enumerate() {
        if conns.is_empty() {
            continue;
        }
        let thread = server_m.thread(format!("put{s}"));
        let store = Rc::clone(&store);
        let extra = cfg.extra_process;
        sim.spawn(async move {
            loop {
                let mut served = false;
                for conn in &conns {
                    if let Some(req) = conn.try_recv(&thread).await {
                        let parsed = KvRequest::decode(&req).expect("well-formed request");
                        let resp = match parsed {
                            KvRequest::Put { key, value } => {
                                match store.put(&thread, key, value).await {
                                    Ok(()) => KvResponse::Stored,
                                    Err(e) => panic!("farm put failed: {e}"),
                                }
                            }
                            KvRequest::Delete { key } => {
                                KvResponse::Deleted(store.remove_local(key))
                            }
                            KvRequest::Get { key } => match store.lookup_local(key) {
                                Some(v) => KvResponse::Found(v),
                                None => KvResponse::NotFound,
                            },
                            KvRequest::MultiGet { keys } => KvResponse::Values(
                                keys.iter().map(|k| store.lookup_local(k)).collect(),
                            ),
                        };
                        if !extra.is_zero() {
                            thread.busy(extra).await;
                        }
                        conn.send(&thread, &resp.encode()).await;
                        served = true;
                    }
                }
                if !served {
                    thread.busy(SimSpan::nanos(100)).await;
                }
            }
        });
    }

    KvSystem {
        server_machine: server_m,
        cluster,
        stats,
        registry,
        spans,
        client_threads,
        rfp_clients,
        server_conns: Vec::new(),
    }
}

/// Shape of a multiplexed client fleet (see [`spawn_fleet_kv`]).
#[derive(Clone)]
pub struct FleetConfig {
    /// Logical clients across the whole fleet. Cheap by design — this
    /// is the axis the fleet bench sweeps to 10⁵.
    pub logical_clients: usize,
    /// Physical RFP connections (slot rings); the real server cost.
    pub physical_conns: usize,
    /// Server poller groups; each owns a disjoint connection shard.
    pub poller_groups: usize,
    /// Tenants; logical clients are spread across them round-robin.
    pub tenants: u32,
    /// Concurrently-active driver tasks cycling through the logical
    /// clients (the fleet's duty cycle: `drivers ≪ logical_clients`
    /// models mostly-idle clients).
    pub drivers: usize,
    /// When set, this tenant gets [`hot_drivers`](FleetConfig::hot_drivers)
    /// extra flooding drivers — the isolation scenario.
    pub hot_tenant: Option<u32>,
    /// Extra drivers dedicated to the hot tenant.
    pub hot_drivers: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            logical_clients: 100,
            physical_conns: 16,
            poller_groups: 4,
            tenants: 4,
            drivers: 16,
            hot_tenant: None,
            hot_drivers: 0,
        }
    }
}

/// A running multiplexed fleet: N logical clients over M physical
/// connections over ≤ 2 QP pairs per client machine, served by sharded
/// tenant-aware poller groups.
pub struct FleetKv {
    /// The simulated cluster (machine 0 is the server).
    pub cluster: Cluster,
    /// Shared measurements (goodput, latency, rejections).
    pub stats: Rc<KvStats>,
    /// Unified instrument registry (`nic.*`, `kv.*`, `rfp.client.*`,
    /// `serve.scan.*`).
    pub registry: MetricsRegistry,
    /// Finished request-lifecycle spans.
    pub spans: SpanRecorder,
    /// The server machine.
    pub server_machine: Rc<Machine>,
    /// One mux per client machine.
    pub muxes: Vec<Rc<RfpMux>>,
    /// Per-tenant health windows (hub connection id = tenant id).
    pub tenant_health: HealthHub,
    /// Completed-Ok calls per tenant (index = tenant id).
    pub tenant_goodput: Rc<Vec<Counter>>,
    /// Every server-side connection (pre-sharding).
    pub server_conns: Vec<Rc<RfpServerConn>>,
    /// All driver threads (for utilisation readings).
    pub client_threads: Vec<Rc<ThreadCtx>>,
}

impl FleetKv {
    /// Discards warm-up measurements (stats, NIC counters, registry,
    /// spans, per-tenant goodput; mux lease counters keep running).
    pub fn reset_measurements(&self) {
        self.stats.reset();
        for i in 0..self.cluster.len() {
            self.cluster.machine(i).nic().reset_counters();
        }
        for t in &self.client_threads {
            t.reset_utilization();
        }
        for c in self.muxes.iter().flat_map(|m| m.clients()) {
            c.stats().reset();
        }
        for g in self.tenant_goodput.iter() {
            g.reset();
        }
        self.registry.reset();
        self.spans.reset();
    }

    /// Per-tenant completed-Ok calls, in tenant order.
    pub fn tenant_goodput(&self) -> Vec<u64> {
        self.tenant_goodput.iter().map(Counter::get).collect()
    }
}

/// Spawns a multiplexed KV fleet: `fleet.logical_clients` logical
/// clients over `fleet.physical_conns` slot rings, one shared QP pair
/// per client machine (QP virtualization), a single shared store
/// partition, and `fleet.poller_groups` tenant-aware server loops
/// ([`serve_loop_tenant`]) over disjoint connection shards.
///
/// Drivers run the overload-aware call path, so `cfg.rfp` must have
/// overload control enabled.
pub fn spawn_fleet_kv(sim: &mut Simulation, cfg: &SystemConfig, fleet: &FleetConfig) -> FleetKv {
    assert!(
        cfg.rfp.overload.enabled,
        "fleet drivers use call_overload; enable cfg.rfp.overload"
    );
    assert!(fleet.tenants > 0 && fleet.drivers > 0 && fleet.physical_conns > 0);
    let machines = cfg.client_machines.min(fleet.physical_conns);
    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let (registry, spans) = system_telemetry(&cluster, &stats, &cfg.rfp);
    stats.register_overload_into(&registry);
    let rfp_cfg = cfg.rfp_sized();

    // One shared partition: any poller group can serve any key (the
    // mux may land a tenant on any connection). Synchronous borrows in
    // a single-threaded sim — no lock needed.
    let part = {
        let buckets = (cfg.spec.key_count as usize * 2 / 8).max(64);
        let part = Rc::new(RefCell::new(Partition::new(buckets)));
        let mut gen = cfg.spec.generator(cfg.seed);
        for (key, value) in gen.preload(cfg.spec.key_count) {
            part.borrow_mut().put(&key, &value);
        }
        part
    };

    // One QP pair per client machine, shared by every connection on it:
    // the whole fleet rides `2 * machines` QP endpoints per side.
    let qp_pairs: Vec<(Rc<rfp_rnic::Qp>, Rc<rfp_rnic::Qp>)> = (0..machines)
        .map(|m| (cluster.qp(1 + m, 0), cluster.qp(0, 1 + m)))
        .collect();

    // Physical connections, round-robin across client machines.
    let mut per_machine_clients: Vec<Vec<Rc<RfpClient>>> =
        (0..machines).map(|_| Vec::new()).collect();
    let mut server_conns = Vec::with_capacity(fleet.physical_conns);
    for k in 0..fleet.physical_conns {
        let m = k % machines;
        let client_m = cluster.machine(1 + m);
        let mut ccfg = client_rfp_cfg(&rfp_cfg, &registry, &spans, k);
        ccfg.overload.seed = rfp_simnet::derive_seed(rfp_cfg.overload.seed, k as u64);
        let (cl, sc) = connect(
            &client_m,
            &server_m,
            Rc::clone(&qp_pairs[m].0),
            Rc::clone(&qp_pairs[m].1),
            ccfg,
        );
        per_machine_clients[m].push(Rc::new(cl));
        server_conns.push(Rc::new(sc));
    }

    // One mux per client machine, all feeding one per-tenant hub.
    let tenant_health = HealthHub::default();
    let muxes: Vec<Rc<RfpMux>> = per_machine_clients
        .into_iter()
        .map(|clients| {
            RfpMux::new(
                clients,
                MuxConfig {
                    tenant_health: Some(tenant_health.clone()),
                    ..MuxConfig::default()
                },
            )
        })
        .collect();

    let tenant_goodput: Rc<Vec<Counter>> =
        Rc::new((0..fleet.tenants).map(|_| Counter::new()).collect());

    // Drivers: `fleet.drivers` baseline tasks cycling disjoint slices
    // of the logical fleet, plus `fleet.hot_drivers` flooding tasks
    // pinned to the hot tenant.
    let mut client_threads = Vec::new();
    let total_drivers = fleet.drivers
        + if fleet.hot_tenant.is_some() {
            fleet.hot_drivers
        } else {
            0
        };
    for d in 0..total_drivers {
        let hot = d >= fleet.drivers;
        let tenant = if hot {
            fleet.hot_tenant.expect("hot drivers imply a hot tenant")
        } else {
            d as u32 % fleet.tenants
        };
        let m = d % machines;
        let mux = Rc::clone(&muxes[m]);
        // A baseline driver owns every logical client ≡ d (mod drivers);
        // a hot driver hammers through one dedicated logical client.
        let logicals: Vec<_> = if hot {
            vec![mux.logical_client(TenantId(tenant))]
        } else {
            (0..fleet.logical_clients)
                .filter(|l| l % fleet.drivers == d)
                .map(|_| mux.logical_client(TenantId(tenant)))
                .collect()
        };
        if logicals.is_empty() {
            continue;
        }
        let thread = cluster.machine(1 + m).thread(format!("drv{d}"));
        client_threads.push(Rc::clone(&thread));
        let spec = cfg.spec.clone();
        let seed = rfp_simnet::derive_seed(cfg.seed, 0xF1EE_7000 + d as u64);
        let st = Rc::clone(&stats);
        let goodput = Rc::clone(&tenant_goodput);
        let think = cfg.think_time;
        let h = sim.handle();
        sim.spawn(async move {
            use rand::{Rng, SeedableRng};
            let mut gen = spec.generator(seed);
            let mut pause_rng =
                rand::rngs::StdRng::seed_from_u64(rfp_simnet::derive_seed(seed, 0x0074_6869));
            let mut next = 0usize;
            loop {
                if !hot && !think.is_zero() {
                    let u: f64 = pause_rng.gen_range(1e-9..1.0);
                    h.sleep(SimSpan::from_nanos_f64(think.as_nanos() as f64 * -u.ln()))
                        .await;
                }
                // Cycle the slice so every logical client stays live.
                let lc = &logicals[next % logicals.len()];
                next += 1;
                let op = gen.next_op();
                let req = match &op {
                    Op::Get { key } => KvRequest::Get { key }.encode(),
                    Op::Put { key, value } => KvRequest::Put { key, value }.encode(),
                };
                let t0 = h.now();
                let out = lc.call_overload(&thread, &req).await;
                match out.info.status {
                    RespStatus::Ok => {
                        let resp = KvResponse::decode(&out.data).expect("server response");
                        record_outcome(&st, &op, &resp, h.now() - t0);
                        goodput[tenant as usize].incr();
                    }
                    RespStatus::Busy => st.rejected_busy.incr(),
                    _ => st.rejected_shed.incr(),
                }
            }
        });
    }

    // Sharded tenant-aware poller groups, one server thread each.
    for (g, group) in shard_conns(&server_conns, fleet.poller_groups)
        .into_iter()
        .enumerate()
    {
        let thread = server_m.thread(format!("pg{g}"));
        let handler = kv_handler(
            Rc::clone(&part),
            cfg.extra_process,
            OutlierGen::new(cfg, 0xF1EE + g as u64),
        );
        sim.spawn(serve_loop_tenant(
            thread,
            group,
            handler,
            SimSpan::nanos(100),
        ));
    }

    FleetKv {
        cluster,
        stats,
        registry,
        spans,
        server_machine: server_m,
        muxes,
        tenant_health,
        tenant_goodput,
        server_conns,
        client_threads,
    }
}
