//! Seeded 64-bit byte-string hashing shared by the stores.
//!
//! FNV-1a over the bytes followed by a SplitMix64 finalizer: cheap,
//! deterministic across runs (unlike `std`'s `RandomState`), and with
//! good enough avalanche for bucket/partition selection and the three
//! independent cuckoo functions (which use distinct seeds).

/// Hashes `bytes` under `seed`.
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Maps `key` to one of `n` partitions (EREW sharding).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn partition_of(key: &[u8], n: usize) -> usize {
    assert!(n > 0, "no partitions");
    (hash_bytes(0x7061_7274, key) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(hash_bytes(1, b"key"), hash_bytes(1, b"key"));
        assert_ne!(hash_bytes(1, b"key"), hash_bytes(2, b"key"));
        assert_ne!(hash_bytes(1, b"key"), hash_bytes(1, b"kez"));
    }

    #[test]
    fn partitions_are_reasonably_balanced() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for i in 0..8000u32 {
            counts[partition_of(&i.to_le_bytes(), n)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "no partitions")]
    fn zero_partitions_rejected() {
        let _ = partition_of(b"k", 0);
    }
}
