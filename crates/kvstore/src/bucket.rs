//! Jakiro's in-memory key-value structure (§4.1).
//!
//! "The in-memory structure contains a number of buckets, each of which
//! contains eight slots … When a bucket is full, we use a strict LRU
//! policy for slot eviction in this bucket. The whole structure is
//! partitioned across different server threads in Exclusive Read
//! Exclusive Write (EREW); each server thread only accesses its own
//! data partition."
//!
//! One [`Partition`] is owned exclusively by one server thread — no
//! locks anywhere, which is what lets Jakiro saturate the NIC with just
//! a couple of cores. The paper's slots are 8-byte pointers into a
//! separate pair store (a bucket fills one cacheline); this port inlines
//! the pairs into the slots, which changes constants but no behaviour
//! the experiments measure.

use crate::hash::hash_bytes;

/// Slots per bucket (a cacheline of 8-byte slots in the paper).
pub const SLOTS_PER_BUCKET: usize = 8;

const BUCKET_SEED: u64 = 0x6A61_6B69_726F;

/// Result of a [`Partition::put`].
#[derive(Debug, PartialEq, Eq)]
pub enum PutOutcome {
    /// A new pair occupied a free slot.
    Inserted,
    /// The key existed; its value was replaced.
    Updated,
    /// The bucket was full; the least-recently-used pair was evicted.
    Evicted {
        /// The key that was pushed out.
        key: Vec<u8>,
    },
}

struct Slot {
    hash: u64,
    key: Box<[u8]>,
    value: Box<[u8]>,
    last_used: u64,
}

struct Bucket {
    slots: Vec<Slot>,
}

/// One EREW partition of the bucketed hash table.
///
/// # Examples
///
/// ```
/// use rfp_kvstore::{Partition, PutOutcome};
///
/// let mut part = Partition::new(16);
/// assert_eq!(part.put(b"key", b"value"), PutOutcome::Inserted);
/// assert_eq!(part.get(b"key"), Some(&b"value"[..]));
/// assert_eq!(part.put(b"key", b"newer"), PutOutcome::Updated);
/// assert_eq!(part.remove(b"key"), Some(b"newer".to_vec()));
/// ```
pub struct Partition {
    buckets: Vec<Bucket>,
    clock: u64,
    entries: usize,
    evictions: u64,
}

impl Partition {
    /// Creates a partition with `buckets` buckets (capacity
    /// `buckets × 8` pairs).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "partition needs at least one bucket");
        Partition {
            buckets: (0..buckets)
                .map(|_| Bucket {
                    slots: Vec::with_capacity(SLOTS_PER_BUCKET),
                })
                .collect(),
            clock: 0,
            entries: 0,
            evictions: 0,
        }
    }

    fn bucket_of(&self, hash: u64) -> usize {
        (hash % self.buckets.len() as u64) as usize
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the partition stores nothing.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// LRU evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &[u8]) -> Option<&[u8]> {
        let hash = hash_bytes(BUCKET_SEED, key);
        let b = self.bucket_of(hash);
        let stamp = self.tick();
        let bucket = &mut self.buckets[b];
        let slot = bucket
            .slots
            .iter_mut()
            .find(|s| s.hash == hash && *s.key == *key)?;
        slot.last_used = stamp;
        Some(&slot.value)
    }

    /// Inserts or updates `key`, evicting the bucket's LRU pair when
    /// full (the paper's strict intra-bucket LRU).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> PutOutcome {
        let hash = hash_bytes(BUCKET_SEED, key);
        let b = self.bucket_of(hash);
        let stamp = self.tick();
        let bucket = &mut self.buckets[b];

        if let Some(slot) = bucket
            .slots
            .iter_mut()
            .find(|s| s.hash == hash && *s.key == *key)
        {
            slot.value = value.into();
            slot.last_used = stamp;
            return PutOutcome::Updated;
        }

        let fresh = Slot {
            hash,
            key: key.into(),
            value: value.into(),
            last_used: stamp,
        };
        if bucket.slots.len() < SLOTS_PER_BUCKET {
            bucket.slots.push(fresh);
            self.entries += 1;
            return PutOutcome::Inserted;
        }

        let victim_idx = bucket
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.last_used)
            .map(|(i, _)| i)
            .expect("bucket is full, hence non-empty");
        let victim = std::mem::replace(&mut bucket.slots[victim_idx], fresh);
        self.evictions += 1;
        PutOutcome::Evicted {
            key: victim.key.into_vec(),
        }
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let hash = hash_bytes(BUCKET_SEED, key);
        let b = self.bucket_of(hash);
        let bucket = &mut self.buckets[b];
        let idx = bucket
            .slots
            .iter()
            .position(|s| s.hash == hash && *s.key == *key)?;
        let slot = bucket.slots.swap_remove(idx);
        self.entries -= 1;
        Some(slot.value.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip() {
        let mut p = Partition::new(16);
        assert_eq!(p.put(b"k1", b"v1"), PutOutcome::Inserted);
        assert_eq!(p.get(b"k1"), Some(&b"v1"[..]));
        assert_eq!(p.get(b"nope"), None);
        assert_eq!(p.put(b"k1", b"v2"), PutOutcome::Updated);
        assert_eq!(p.get(b"k1"), Some(&b"v2"[..]));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn remove_deletes() {
        let mut p = Partition::new(4);
        p.put(b"a", b"1");
        assert_eq!(p.remove(b"a"), Some(b"1".to_vec()));
        assert_eq!(p.remove(b"a"), None);
        assert_eq!(p.get(b"a"), None);
        assert!(p.is_empty());
    }

    #[test]
    fn full_bucket_evicts_strict_lru() {
        // One bucket: the 9th insert evicts exactly the LRU key.
        let mut p = Partition::new(1);
        for i in 0..8u8 {
            assert_eq!(p.put(&[i], b"v"), PutOutcome::Inserted);
        }
        // Touch everything except key [3]; it becomes the LRU.
        for i in 0..8u8 {
            if i != 3 {
                assert!(p.get(&[i]).is_some());
            }
        }
        match p.put(b"new", b"v") {
            PutOutcome::Evicted { key } => assert_eq!(key, vec![3]),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(p.get(&[3u8][..]), None);
        assert!(p.get(b"new").is_some());
        assert_eq!(p.len(), 8);
        assert_eq!(p.evictions(), 1);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut p = Partition::new(1);
        for i in 0..8u8 {
            p.put(&[i], b"v");
        }
        // Key [0] was inserted first but a GET saves it.
        assert!(p.get(&[0u8][..]).is_some());
        match p.put(b"x", b"v") {
            PutOutcome::Evicted { key } => assert_eq!(key, vec![1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn many_keys_distribute_across_buckets() {
        let mut p = Partition::new(64);
        for i in 0..300u32 {
            p.put(&i.to_le_bytes(), b"val");
        }
        // 64 buckets × 8 slots = 512 capacity: everything fits unless
        // hashing is badly skewed; allow a few collisions' evictions.
        assert!(
            p.len() >= 290,
            "len {} evictions {}",
            p.len(),
            p.evictions()
        );
        let mut hits = 0;
        for i in 0..300u32 {
            if p.get(&i.to_le_bytes()).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits as usize, p.len());
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = Partition::new(0);
    }
}
