//! Primary/backup replication of the bucket-table store.
//!
//! The primary applies every request to its own partition and ships the
//! **ordered mutation log** — PUTs and DELETEs, as their encoded
//! requests, stamped with a monotone log sequence number (LSN) — to the
//! backup over a dedicated RFP connection. The backup applies entries
//! in LSN order and acks with the next LSN it expects, so the log
//! channel inherits RFP's exactly-once delivery (seq dedup on the
//! replication connection makes a re-shipped batch harmless).
//!
//! Two ack policies ([`AckPolicy`]):
//!
//! * **`Sync`** (default) — a client's mutating request is answered
//!   only after the backup acked the log batch carrying it:
//!   *acked-write = replicated-write*, the invariant the failover bench
//!   asserts. Entries picked up in the same scan share one batch, so
//!   the replication round trip amortises across concurrent writers.
//! * **`Async`** — the client is answered immediately and the log ships
//!   at the end of the scan. Cheaper per write, but a primary crash
//!   loses the unshipped tail *after it was acked* — the bench
//!   quantifies that trade instead of hiding it.
//!
//! When the backup stops acking (crashed, partitioned away), the
//! primary declares it dead and continues **solo**: clients keep being
//! served from the surviving copy, and replication stops until a new
//! backup is provisioned (resynchronisation is outside this module's
//! scope). The reverse direction — the *primary* dying — is the
//! failover path: a detector promotes the backup
//! ([`BackupRole::promote`]), which bumps the replication epoch on its
//! client-facing connections; from then on it serves clients itself,
//! ignores the log channel, and the epoch fence guarantees the deposed
//! primary can never ack another split-brain write (requests stamped
//! with the new epoch are fenced, its responses carry the old epoch and
//! are discarded client-side).
//!
//! [`ReplicationConfig::default`] is **off**: a primary loop with the
//! default config serves exactly like the plain
//! [`serve_loop`](rfp_core::serve_loop) and stamps nothing new on the
//! wire — the `prop_replica` suite pins that replication-off runs
//! encode byte-identical headers to the pre-replication format.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use rfp_core::{RecoveryConfig, RespStatus, RfpClient, RfpServerConn};
use rfp_rnic::ThreadCtx;
use rfp_simnet::{RetryPolicy, SimSpan};

use crate::bucket::Partition;
use crate::proto::{KvRequest, ProtoError};
use crate::systems::apply_to_partition;

/// When the primary acknowledges a mutating request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Ack only after the backup acked the log entry (no acked write
    /// can be lost to a primary crash).
    Sync,
    /// Ack immediately, ship the log at scan end (a primary crash can
    /// lose the acked-but-unshipped tail).
    Async,
}

/// Tunables of the primary's replication path.
#[derive(Clone, Debug)]
pub struct ReplicationConfig {
    /// Master switch; off by default. A disabled primary loop never
    /// touches the log channel and serves exactly like the plain loop.
    pub enabled: bool,
    /// Ack policy for mutating requests.
    pub ack: AckPolicy,
    /// Most log entries shipped per replication call.
    pub batch: usize,
    /// Recovery policy of the ship calls. The default keeps the budget
    /// short: a dead backup should demote to solo serving in a bounded
    /// span, not stall clients for the full client-side budget.
    pub recovery: RecoveryConfig,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            enabled: false,
            ack: AckPolicy::Sync,
            batch: 8,
            recovery: RecoveryConfig {
                retry: RetryPolicy::exponential(4, SimSpan::micros(10), SimSpan::micros(200), 0.2),
                ..RecoveryConfig::default()
            },
        }
    }
}

/// Log-batch wire format:
/// `[base_lsn:u64][n:u16]` then per entry `[len:u32][encoded request]`.
pub fn encode_batch(base_lsn: u64, entries: &[Vec<u8>]) -> Vec<u8> {
    assert!(entries.len() <= u16::MAX as usize, "batch too large");
    let mut out = Vec::with_capacity(10 + entries.iter().map(|e| 4 + e.len()).sum::<usize>());
    out.extend_from_slice(&base_lsn.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&(e.len() as u32).to_le_bytes());
        out.extend_from_slice(e);
    }
    out
}

/// Decodes a log batch into its base LSN and borrowed entries.
pub fn decode_batch(buf: &[u8]) -> Result<(u64, Vec<&[u8]>), ProtoError> {
    if buf.len() < 10 {
        return Err(ProtoError::Truncated);
    }
    let base_lsn = u64::from_le_bytes(buf[0..8].try_into().expect("len checked"));
    let n = u16::from_le_bytes([buf[8], buf[9]]) as usize;
    let mut entries = Vec::with_capacity(n);
    let mut off = 10;
    for _ in 0..n {
        if buf.len() < off + 4 {
            return Err(ProtoError::Truncated);
        }
        let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("len checked")) as usize;
        off += 4;
        if buf.len() < off + len {
            return Err(ProtoError::Truncated);
        }
        entries.push(&buf[off..off + len]);
        off += len;
    }
    Ok((base_lsn, entries))
}

/// Ack wire format: `[next_lsn:u64]`.
pub fn encode_ack(next_lsn: u64) -> Vec<u8> {
    next_lsn.to_le_bytes().to_vec()
}

/// Decodes a replication ack.
pub fn decode_ack(buf: &[u8]) -> Result<u64, ProtoError> {
    if buf.len() < 8 {
        return Err(ProtoError::Truncated);
    }
    Ok(u64::from_le_bytes(
        buf[0..8].try_into().expect("len checked"),
    ))
}

/// The primary's replication state, shared with its observers.
#[derive(Default)]
pub struct PrimaryRole {
    /// Log entries acked by the backup.
    pub shipped_entries: Cell<u64>,
    /// Replication calls that carried them.
    pub shipped_batches: Cell<u64>,
    /// Set when the backup stopped acking and the primary fell back to
    /// serving solo.
    pub solo: Cell<bool>,
    /// Mutations actually applied to the primary's partition — the
    /// duplicate-apply ledger: with same-seq dedup doing its job this
    /// never exceeds the mutations clients issued, hedged or not.
    pub applied_mutations: Cell<u64>,
    next_lsn: Cell<u64>,
}

impl PrimaryRole {
    /// LSN the next shipped entry will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn.get()
    }
}

/// The backup's replication state, shared with the failure detector.
#[derive(Default)]
pub struct BackupRole {
    /// Set by [`promote`](BackupRole::promote): the backup now serves
    /// clients itself and ignores the log channel.
    pub promoted: Cell<bool>,
    /// Log entries applied in order.
    pub applied: Cell<u64>,
    /// Standby read serving (off by default): an **unpromoted** backup
    /// polls its client-facing connections and answers GETs from the
    /// replicated partition, while refusing every mutation with `Busy`
    /// *without executing it* — the contract that makes the gray-failure
    /// router's scored routing and read hedging safe. Under `Sync` ack
    /// an acked write is applied here before the primary answers, so a
    /// standby read never misses a write its issuer saw acked.
    pub standby_reads: Cell<bool>,
    /// GETs served while in standby.
    pub served_reads: Cell<u64>,
    /// Mutations refused (`Busy`, unexecuted) while in standby.
    pub refused_mutations: Cell<u64>,
    expected_lsn: Cell<u64>,
}

impl BackupRole {
    /// Promotes this backup into `epoch`: its client-facing connections
    /// fence every request stamped in an older epoch (and teach lagging
    /// clients the new one through the `Fenced` verdict), and its serve
    /// loop flips from log-applying standby to serving clients.
    ///
    /// The log channel is deliberately *not* fenced — a client-style
    /// epoch fence would let the deposed primary adopt the new epoch
    /// and keep shipping. The standby loop just stops draining it, so
    /// a surviving ex-primary times out and demotes itself to solo.
    pub fn promote(&self, client_conns: &[Rc<RfpServerConn>], epoch: u16) {
        for conn in client_conns {
            conn.set_epoch(epoch);
        }
        self.promoted.set(true);
    }
}

fn crashed(thread: &ThreadCtx) -> bool {
    thread.machine().faults().is_crashed()
}

async fn park(thread: &ThreadCtx, span: SimSpan) {
    thread
        .idle_wait(thread.handle().sleep(span.max(SimSpan::micros(1))))
        .await;
}

/// Ships `log` to the backup in batches of `cfg.batch`; returns whether
/// every batch was acked.
async fn ship_log(
    thread: &ThreadCtx,
    ship: &RfpClient,
    cfg: &ReplicationConfig,
    role: &PrimaryRole,
    log: &[Vec<u8>],
) -> bool {
    for chunk in log.chunks(cfg.batch.max(1)) {
        let base = role.next_lsn.get();
        let msg = encode_batch(base, chunk);
        match ship.call_with_recovery(thread, &msg, &cfg.recovery).await {
            Ok(out) => {
                let acked = decode_ack(&out.data).expect("backup sent a well-formed ack");
                debug_assert_eq!(acked, base + chunk.len() as u64, "backup ack out of order");
                role.next_lsn.set(base + chunk.len() as u64);
                role.shipped_entries
                    .set(role.shipped_entries.get() + chunk.len() as u64);
                role.shipped_batches.set(role.shipped_batches.get() + 1);
            }
            Err(_) => return false,
        }
    }
    true
}

/// Runs the primary forever: scan the client connections, apply every
/// request to `partition`, ship the scan's mutations to the backup over
/// `ship`, and answer clients per the ack policy.
///
/// With `cfg.enabled == false` this is the plain serve loop: requests
/// are applied and answered in place and `ship`/`role` are never
/// touched.
pub async fn primary_serve_loop(
    thread: Rc<ThreadCtx>,
    conns: Vec<Rc<RfpServerConn>>,
    partition: Rc<RefCell<Partition>>,
    ship: Rc<RfpClient>,
    cfg: ReplicationConfig,
    role: Rc<PrimaryRole>,
    spin: SimSpan,
) {
    assert!(!conns.is_empty(), "primary with no client connections");
    loop {
        if crashed(&thread) {
            park(&thread, spin).await;
            continue;
        }
        let mut served_any = false;
        // This scan's mutation log and (sync mode) the responses held
        // back until it is replicated.
        let mut log: Vec<Vec<u8>> = Vec::new();
        let mut held: Vec<(Rc<RfpServerConn>, Vec<u8>)> = Vec::new();
        'conns: for conn in &conns {
            for _ in 0..conn.window() {
                if crashed(&thread) {
                    break 'conns;
                }
                let Some(req) = conn.try_recv(&thread).await else {
                    break;
                };
                let (resp, work, mutating) = {
                    let parsed = KvRequest::decode(&req).expect("client sent well-formed request");
                    let mutating =
                        matches!(parsed, KvRequest::Put { .. } | KvRequest::Delete { .. });
                    let (resp, work) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
                    (resp, work, mutating)
                };
                if !work.is_zero() {
                    thread.busy(work).await;
                }
                if crashed(&thread) {
                    // Died mid-request: the half-done work (and any
                    // held responses) die with the process.
                    break 'conns;
                }
                served_any = true;
                if cfg.enabled && mutating {
                    role.applied_mutations.set(role.applied_mutations.get() + 1);
                }
                if cfg.enabled && mutating && !role.solo.get() {
                    log.push(req);
                    match cfg.ack {
                        AckPolicy::Sync => held.push((Rc::clone(conn), resp.encode())),
                        AckPolicy::Async => conn.send(&thread, &resp.encode()).await,
                    }
                } else {
                    conn.send(&thread, &resp.encode()).await;
                }
            }
        }
        if !log.is_empty()
            && !crashed(&thread)
            && !ship_log(&thread, &ship, &cfg, &role, &log).await
            && !crashed(&thread)
        {
            // The backup stopped acking: demote to solo serving. The
            // held responses below are still answered — the primary
            // holds the authoritative copy.
            role.solo.set(true);
        }
        for (conn, resp) in held {
            if crashed(&thread) {
                break;
            }
            conn.send(&thread, &resp).await;
        }
        if !served_any {
            thread.busy(spin).await;
        }
    }
}

/// Runs the backup forever. In **standby** it drains the replication
/// connection, applies log batches in LSN order and acks them. The
/// client-facing connections are left unpolled (a client that fails
/// over early finds no service and bounces back) — unless
/// [`BackupRole::standby_reads`] is set, in which case standby also
/// answers GETs from the replicated partition and refuses mutations
/// with `Busy` without executing them. After [`BackupRole::promote`]
/// it flips: the log channel is ignored and the client connections are
/// served fully from the replicated partition.
pub async fn backup_serve_loop(
    thread: Rc<ThreadCtx>,
    repl_conn: Rc<RfpServerConn>,
    client_conns: Vec<Rc<RfpServerConn>>,
    partition: Rc<RefCell<Partition>>,
    role: Rc<BackupRole>,
    spin: SimSpan,
) {
    loop {
        if crashed(&thread) {
            park(&thread, spin).await;
            continue;
        }
        let mut served_any = false;
        if !role.promoted.get() {
            while let Some(msg) = repl_conn.try_recv(&thread).await {
                served_any = true;
                let (base, entries) = decode_batch(&msg).expect("primary sent a well-formed batch");
                let expected = role.expected_lsn.get();
                if base + entries.len() as u64 <= expected {
                    // A stale re-ship whose ack was lost: already
                    // applied, just re-ack the current frontier.
                    repl_conn.send(&thread, &encode_ack(expected)).await;
                    continue;
                }
                assert_eq!(base, expected, "replication log gap");
                for entry in &entries {
                    let parsed =
                        KvRequest::decode(entry).expect("primary shipped well-formed entry");
                    let (_, work) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
                    if !work.is_zero() {
                        thread.busy(work).await;
                    }
                    role.applied.set(role.applied.get() + 1);
                }
                if crashed(&thread) {
                    break;
                }
                let next = expected + entries.len() as u64;
                role.expected_lsn.set(next);
                repl_conn.send(&thread, &encode_ack(next)).await;
            }
            if role.standby_reads.get() && !crashed(&thread) {
                'standby: for conn in &client_conns {
                    for _ in 0..conn.window() {
                        if crashed(&thread) {
                            break 'standby;
                        }
                        let Some(req) = conn.try_recv(&thread).await else {
                            break;
                        };
                        let parsed =
                            KvRequest::decode(&req).expect("client sent well-formed request");
                        if matches!(parsed, KvRequest::Put { .. } | KvRequest::Delete { .. }) {
                            // Refuse without executing: `Busy` marks the
                            // mutation provably-not-applied, so its
                            // issuer resubmits on the primary under a
                            // fresh seq — a hedged write can never
                            // double-apply through a standby.
                            role.refused_mutations.set(role.refused_mutations.get() + 1);
                            conn.reject(&thread, RespStatus::Busy).await;
                            continue;
                        }
                        let (resp, work) = apply_to_partition(&mut partition.borrow_mut(), &parsed);
                        if !work.is_zero() {
                            thread.busy(work).await;
                        }
                        if crashed(&thread) {
                            break 'standby;
                        }
                        conn.send(&thread, &resp.encode()).await;
                        role.served_reads.set(role.served_reads.get() + 1);
                        served_any = true;
                    }
                }
            }
        } else {
            'conns: for conn in &client_conns {
                for _ in 0..conn.window() {
                    if crashed(&thread) {
                        break 'conns;
                    }
                    let Some(req) = conn.try_recv(&thread).await else {
                        break;
                    };
                    let (resp, work) = {
                        let parsed =
                            KvRequest::decode(&req).expect("client sent well-formed request");
                        apply_to_partition(&mut partition.borrow_mut(), &parsed)
                    };
                    if !work.is_zero() {
                        thread.busy(work).await;
                    }
                    if crashed(&thread) {
                        break 'conns;
                    }
                    conn.send(&thread, &resp.encode()).await;
                    served_any = true;
                }
            }
        }
        if !served_any {
            thread.busy(spin).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off() {
        let cfg = ReplicationConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.ack, AckPolicy::Sync);
    }

    #[test]
    fn batch_codec_round_trips() {
        let entries = vec![
            KvRequest::Put {
                key: b"k1",
                value: b"v1",
            }
            .encode(),
            KvRequest::Delete { key: b"k2" }.encode(),
        ];
        let buf = encode_batch(42, &entries);
        let (lsn, decoded) = decode_batch(&buf).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], entries[0].as_slice());
        assert_eq!(decoded[1], entries[1].as_slice());
    }

    #[test]
    fn empty_batch_round_trips() {
        let buf = encode_batch(7, &[]);
        let (lsn, decoded) = decode_batch(&buf).unwrap();
        assert_eq!(lsn, 7);
        assert!(decoded.is_empty());
    }

    #[test]
    fn truncated_batch_errors() {
        let entries = vec![KvRequest::Get { key: b"k" }.encode()];
        let mut buf = encode_batch(0, &entries);
        buf.truncate(buf.len() - 1);
        assert_eq!(decode_batch(&buf), Err(ProtoError::Truncated));
        assert_eq!(decode_ack(&[1, 2, 3]), Err(ProtoError::Truncated));
    }

    #[test]
    fn ack_codec_round_trips() {
        assert_eq!(decode_ack(&encode_ack(u64::MAX)).unwrap(), u64::MAX);
    }
}
