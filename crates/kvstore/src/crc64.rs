//! CRC-64 re-export (the XZ/GO-ECMA variant).
//!
//! The implementation moved to [`rfp_simnet::crc64`] so the RFP wire
//! layer (extended response headers) and the stores checksum with the
//! same code; this module keeps the historical `rfp_kvstore::crc64`
//! paths working for existing callers.
//!
//! # Examples
//!
//! ```
//! assert_eq!(rfp_kvstore::crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
//! ```

pub use rfp_simnet::crc64::{crc64, crc64_pair, Crc64};
