//! The Pilaf-style server-bypass store: a 3-way cuckoo hash table with
//! CRC64 self-verifying entries, laid out in RNIC-registered memory so
//! clients GET with one-sided READs only (§2.3, Figure 8b).
//!
//! Layout (all little-endian):
//!
//! * **slot table** — one 40-byte slot per bucket:
//!   `[klen:u16][vlen:u32][key_hash:u64][cell:u64][rsvd:u64][crc:u64]`
//!   where `crc` covers the first 30 bytes. A slot with `klen == 0` is
//!   vacant (still CRC-protected).
//! * **extent cells** — fixed-size cells holding
//!   `[klen:u16][vlen:u32][key][value][crc:u64]` with `crc` over
//!   everything before it.
//!
//! GETs probe a key's three candidate buckets, then fetch the extent —
//! every read re-validated by checksum and retried on mismatch, which is
//! exactly Pilaf's mechanism for surviving get-put races without server
//! CPU. PUTs go through the server (as in Pilaf), whose in-place updates
//! are deliberately non-atomic (two phases with a CPU gap): racing
//! client READs observe torn bytes and the CRC catches them.

use std::cell::RefCell;
use std::rc::Rc;

use rfp_paradigms::BypassClient;
use rfp_rnic::{Machine, MemRegion, ThreadCtx};
use rfp_simnet::SimSpan;

use crate::crc64::crc64;
use crate::hash::hash_bytes;

/// Bytes per slot in the table region.
pub const SLOT_SIZE: usize = 40;
const SLOT_CRC_COVER: usize = 30;
const SLOT_CRC_OFF: usize = 30;

/// Seeds of the three cuckoo hash functions.
pub const CUCKOO_SEEDS: [u64; 3] = [0xC0FF_EE01, 0xC0FF_EE02, 0xC0FF_EE03];

/// Give up displacement after this many kicks (the table is then
/// effectively full at this load factor).
const MAX_KICKS: usize = 256;

/// Cap on checksum-failure rereads in one client lookup.
const MAX_CRC_RETRIES: u32 = 64;

/// Errors from server-side mutations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CuckooError {
    /// Displacement could not find a home for the key.
    TableFull,
    /// No free extent cell.
    OutOfCells,
    /// Key + value exceed the extent cell size.
    EntryTooLarge,
}

impl std::fmt::Display for CuckooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CuckooError::TableFull => write!(f, "cuckoo table full"),
            CuckooError::OutOfCells => write!(f, "extent cells exhausted"),
            CuckooError::EntryTooLarge => write!(f, "entry exceeds cell size"),
        }
    }
}

impl std::error::Error for CuckooError {}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Slot {
    klen: u16,
    vlen: u32,
    key_hash: u64,
    cell: u64,
}

impl Slot {
    const VACANT: Slot = Slot {
        klen: 0,
        vlen: 0,
        key_hash: 0,
        cell: 0,
    };

    fn is_vacant(&self) -> bool {
        self.klen == 0
    }

    fn encode(&self) -> [u8; SLOT_SIZE] {
        let mut b = [0u8; SLOT_SIZE];
        b[0..2].copy_from_slice(&self.klen.to_le_bytes());
        b[2..6].copy_from_slice(&self.vlen.to_le_bytes());
        b[6..14].copy_from_slice(&self.key_hash.to_le_bytes());
        b[14..22].copy_from_slice(&self.cell.to_le_bytes());
        let crc = crc64(&b[..SLOT_CRC_COVER]);
        b[SLOT_CRC_OFF..SLOT_CRC_OFF + 8].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Decodes and CRC-verifies raw slot bytes.
    fn decode(b: &[u8]) -> Option<Slot> {
        let crc = u64::from_le_bytes(b[SLOT_CRC_OFF..SLOT_CRC_OFF + 8].try_into().ok()?);
        if crc64(&b[..SLOT_CRC_COVER]) != crc {
            return None;
        }
        Some(Slot {
            klen: u16::from_le_bytes(b[0..2].try_into().ok()?),
            vlen: u32::from_le_bytes(b[2..6].try_into().ok()?),
            key_hash: u64::from_le_bytes(b[6..14].try_into().ok()?),
            cell: u64::from_le_bytes(b[14..22].try_into().ok()?),
        })
    }
}

/// Shared geometry: everything a client needs to address the table.
#[derive(Clone)]
pub struct PilafView {
    /// The slot table region.
    pub table: Rc<MemRegion>,
    /// The extent cell region.
    pub data: Rc<MemRegion>,
    /// Number of buckets (each one slot).
    pub buckets: usize,
    /// Bytes per extent cell.
    pub cell_size: usize,
}

impl PilafView {
    /// The key's three candidate bucket indices.
    pub fn candidate_buckets(&self, key: &[u8]) -> [usize; 3] {
        CUCKOO_SEEDS.map(|seed| (hash_bytes(seed, key) % self.buckets as u64) as usize)
    }

    /// Tag hash stored in slots for early mismatch rejection.
    pub fn key_tag(&self, key: &[u8]) -> u64 {
        hash_bytes(0x0074_6167, key)
    }
}

/// Server-side owner of the store.
pub struct PilafStore {
    view: PilafView,
    free_cells: RefCell<Vec<u64>>,
    entries: RefCell<usize>,
    /// CPU gap between the two phases of an in-place update, exposing a
    /// torn-read window to concurrent one-sided GETs.
    pub update_gap: SimSpan,
}

impl PilafStore {
    /// Allocates and initialises the table on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` or `cells` is zero, or `cell_size` cannot
    /// hold the per-cell header and checksum.
    pub fn new(machine: &Rc<Machine>, buckets: usize, cells: usize, cell_size: usize) -> Self {
        assert!(buckets > 0 && cells > 0, "empty geometry");
        assert!(cell_size > 14, "cell too small for header + crc");
        let table = machine.alloc_mr(buckets * SLOT_SIZE);
        let data = machine.alloc_mr(cells * cell_size);
        // Write vacant-but-checksummed slots so clients can always
        // validate what they read.
        let vacant = Slot::VACANT.encode();
        for b in 0..buckets {
            table.write_local(b * SLOT_SIZE, &vacant);
        }
        PilafStore {
            view: PilafView {
                table,
                data,
                buckets,
                cell_size,
            },
            free_cells: RefCell::new((0..cells as u64).rev().collect()),
            entries: RefCell::new(0),
            update_gap: SimSpan::nanos(400),
        }
    }

    /// The client-visible geometry.
    pub fn view(&self) -> PilafView {
        self.view.clone()
    }

    /// Stored entries.
    pub fn len(&self) -> usize {
        *self.entries.borrow()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current load factor (entries / buckets).
    pub fn load_factor(&self) -> f64 {
        self.len() as f64 / self.view.buckets as f64
    }

    fn read_slot(&self, bucket: usize) -> Slot {
        let bytes = self.view.table.read_local(bucket * SLOT_SIZE, SLOT_SIZE);
        Slot::decode(&bytes).expect("server-local slots are never torn")
    }

    fn write_slot(&self, bucket: usize, slot: Slot) {
        self.view
            .table
            .write_local(bucket * SLOT_SIZE, &slot.encode());
    }

    fn cell_off(&self, cell: u64) -> usize {
        cell as usize * self.view.cell_size
    }

    fn write_cell(&self, cell: u64, key: &[u8], value: &[u8]) {
        let mut bytes = Vec::with_capacity(6 + key.len() + value.len() + 8);
        bytes.extend_from_slice(&(key.len() as u16).to_le_bytes());
        bytes.extend_from_slice(&(value.len() as u32).to_le_bytes());
        bytes.extend_from_slice(key);
        bytes.extend_from_slice(value);
        let crc = crc64(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        self.view.data.write_local(self.cell_off(cell), &bytes);
    }

    fn read_cell_key(&self, slot: &Slot) -> Vec<u8> {
        self.view
            .data
            .read_local(self.cell_off(slot.cell) + 6, slot.klen as usize)
    }

    fn entry_len(&self, key: &[u8], value: &[u8]) -> usize {
        6 + key.len() + value.len() + 8
    }

    /// Finds the bucket currently holding `key`, if any.
    fn find(&self, key: &[u8]) -> Option<(usize, Slot)> {
        let tag = self.view.key_tag(key);
        for b in self.view.candidate_buckets(key) {
            let slot = self.read_slot(b);
            if !slot.is_vacant()
                && slot.key_hash == tag
                && slot.klen as usize == key.len()
                && self.read_cell_key(&slot) == key
            {
                return Some((b, slot));
            }
        }
        None
    }

    /// Server-local lookup (used by tests and by PUT handlers).
    pub fn lookup_local(&self, key: &[u8]) -> Option<Vec<u8>> {
        let (_, slot) = self.find(key)?;
        let off = self.cell_off(slot.cell) + 6 + slot.klen as usize;
        Some(self.view.data.read_local(off, slot.vlen as usize))
    }

    /// Inserts or updates `key` (server CPU path — Pilaf serves PUTs
    /// with an RPC for exactly this reason).
    ///
    /// In-place updates are two-phase with [`update_gap`] of CPU time in
    /// between: concurrent bypass GETs can observe the torn state and
    /// must retry on checksum failure.
    ///
    /// [`update_gap`]: Self::update_gap
    pub async fn put(
        &self,
        thread: &ThreadCtx,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), CuckooError> {
        if self.entry_len(key, value) > self.view.cell_size {
            return Err(CuckooError::EntryTooLarge);
        }
        if let Some((bucket, slot)) = self.find(key) {
            // In-place update: rewrite the extent in two halves with a
            // gap, then refresh the slot (new vlen ⇒ new slot CRC).
            let mut bytes = Vec::with_capacity(self.entry_len(key, value));
            bytes.extend_from_slice(&(key.len() as u16).to_le_bytes());
            bytes.extend_from_slice(&(value.len() as u32).to_le_bytes());
            bytes.extend_from_slice(key);
            bytes.extend_from_slice(value);
            let crc = crc64(&bytes);
            bytes.extend_from_slice(&crc.to_le_bytes());
            let off = self.cell_off(slot.cell);
            let half = bytes.len() / 2;
            self.view.data.write_local(off, &bytes[..half]);
            thread.busy(self.update_gap).await;
            self.view.data.write_local(off + half, &bytes[half..]);
            self.write_slot(
                bucket,
                Slot {
                    vlen: value.len() as u32,
                    ..slot
                },
            );
            return Ok(());
        }
        self.insert_fresh(key, value)
    }

    /// Atomic (setup-time) insert-or-update: no torn window, no thread
    /// required. Used for preloading the store before timing starts.
    pub fn insert_local(&self, key: &[u8], value: &[u8]) -> Result<(), CuckooError> {
        if self.entry_len(key, value) > self.view.cell_size {
            return Err(CuckooError::EntryTooLarge);
        }
        if let Some((bucket, slot)) = self.find(key) {
            self.write_cell(slot.cell, key, value);
            self.write_slot(
                bucket,
                Slot {
                    vlen: value.len() as u32,
                    ..slot
                },
            );
            return Ok(());
        }
        self.insert_fresh(key, value)
    }

    /// Removes `key` (server CPU path): vacates the slot, then frees the
    /// extent cell. Returns whether the key existed. A concurrent bypass
    /// GET that already read the old slot may still fetch the freed cell
    /// — its key/CRC check rejects the stale data, exactly as for
    /// updates.
    pub fn remove_local(&self, key: &[u8]) -> bool {
        let Some((bucket, slot)) = self.find(key) else {
            return false;
        };
        self.write_slot(bucket, Slot::VACANT);
        self.free_cells.borrow_mut().push(slot.cell);
        *self.entries.borrow_mut() -= 1;
        true
    }

    /// Inserts a key known to be absent: write the extent first, then
    /// publish the slot.
    fn insert_fresh(&self, key: &[u8], value: &[u8]) -> Result<(), CuckooError> {
        let cell = self
            .free_cells
            .borrow_mut()
            .pop()
            .ok_or(CuckooError::OutOfCells)?;
        self.write_cell(cell, key, value);
        let new_slot = Slot {
            klen: key.len() as u16,
            vlen: value.len() as u32,
            key_hash: self.view.key_tag(key),
            cell,
        };
        match self.place(key, new_slot) {
            Ok(()) => {
                *self.entries.borrow_mut() += 1;
                Ok(())
            }
            Err(e) => {
                self.free_cells.borrow_mut().push(cell);
                Err(e)
            }
        }
    }

    /// Cuckoo placement with displacement.
    fn place(&self, key: &[u8], new_slot: Slot) -> Result<(), CuckooError> {
        // Fast path: any vacant candidate bucket.
        for b in self.view.candidate_buckets(key) {
            if self.read_slot(b).is_vacant() {
                self.write_slot(b, new_slot);
                return Ok(());
            }
        }
        // Displacement: kick the resident of the first candidate along
        // its alternates (depth-first, deterministic).
        let mut bucket = self.view.candidate_buckets(key)[0];
        let mut homeless = new_slot;
        for kick in 0..MAX_KICKS {
            let resident = self.read_slot(bucket);
            self.write_slot(bucket, homeless);
            if resident.is_vacant() {
                return Ok(());
            }
            homeless = resident;
            // Route the displaced entry to one of its other buckets.
            let rkey = self.read_cell_key(&homeless);
            let candidates = self.view.candidate_buckets(&rkey);
            let cur = candidates
                .iter()
                .position(|&b| b == bucket)
                .unwrap_or(kick % 3);
            bucket = candidates[(cur + 1) % 3];
            if self.read_slot(bucket).is_vacant() {
                self.write_slot(bucket, homeless);
                return Ok(());
            }
        }
        // Undo is unnecessary for the experiments (the table keeps all
        // displaced entries placed; only the last homeless one is lost),
        // but report the failure honestly.
        Err(CuckooError::TableFull)
    }
}

/// Outcome of a client-side bypass GET.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BypassGet {
    /// The value, if the key was present.
    pub value: Option<Vec<u8>>,
    /// One-sided operations this GET cost (the paper's amplification
    /// metric: Pilaf averages 3.2).
    pub ops: u32,
    /// Checksum failures that forced rereads (get-put races).
    pub crc_retries: u32,
}

/// Performs one Pilaf GET from the client: probe candidate buckets with
/// one-sided READs, fetch the extent, verify everything by checksum,
/// retry on mismatch (Figure 8b's loop).
pub async fn bypass_get(
    client: &BypassClient,
    thread: &ThreadCtx,
    view: &PilafView,
    key: &[u8],
) -> BypassGet {
    let tag = view.key_tag(key);
    let mut ops = 0u32;
    let mut crc_retries = 0u32;
    for bucket in view.candidate_buckets(key) {
        // Probe the slot, rereading while torn.
        let slot = loop {
            ops += 1;
            let bytes = client
                .fetch(thread, &view.table, bucket * SLOT_SIZE, SLOT_SIZE)
                .await;
            match Slot::decode(&bytes) {
                Some(s) => break s,
                None => {
                    crc_retries += 1;
                    if crc_retries >= MAX_CRC_RETRIES {
                        return BypassGet {
                            value: None,
                            ops,
                            crc_retries,
                        };
                    }
                }
            }
        };
        if slot.is_vacant() || slot.key_hash != tag || slot.klen as usize != key.len() {
            continue;
        }
        // Fetch the extent (header + key + value + crc in one READ).
        let entry_len = 6 + slot.klen as usize + slot.vlen as usize + 8;
        loop {
            ops += 1;
            let bytes = client
                .fetch(
                    thread,
                    &view.data,
                    slot.cell as usize * view.cell_size,
                    entry_len,
                )
                .await;
            let body = &bytes[..entry_len - 8];
            let crc = u64::from_le_bytes(bytes[entry_len - 8..].try_into().expect("len"));
            if crc64(body) == crc {
                let klen = u16::from_le_bytes(bytes[0..2].try_into().expect("len")) as usize;
                let vlen = u32::from_le_bytes(bytes[2..6].try_into().expect("len")) as usize;
                if klen == key.len() && &bytes[6..6 + klen] == key {
                    return BypassGet {
                        value: Some(bytes[6 + klen..6 + klen + vlen].to_vec()),
                        ops,
                        crc_retries,
                    };
                }
                // Key hash collided with another key: keep probing.
                break;
            }
            // Torn extent (racing PUT): retry this fetch.
            crc_retries += 1;
            if crc_retries >= MAX_CRC_RETRIES {
                return BypassGet {
                    value: None,
                    ops,
                    crc_retries,
                };
            }
        }
    }
    BypassGet {
        value: None,
        ops,
        crc_retries,
    }
}
