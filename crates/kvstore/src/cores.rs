//! Multi-core scaling rig: one server machine with N reactor cores,
//! an EREW-partitioned store, and a keyspace *constructed* so that key
//! popularity maps onto partitions in a controlled way.
//!
//! Zipf over a hashed keyspace does **not** concentrate load on one
//! partition — the hash sprays the popular ranks across all of them
//! (that is exactly the §4.4.3 load-balance argument). To study the
//! skew-collapse regime the reactor's work stealing exists for, the
//! rig builds the rank order deliberately:
//!
//! * it generates candidate key names and buckets them by
//!   [`partition_of`] until every partition owns `keys_per_core`
//!   names;
//! * **uniform** runs interleave the buckets round-robin (rank `r` →
//!   partition `r % cores`), so uniform sampling loads every core
//!   equally;
//! * **skewed** runs lay partition 0's names first, so the head of a
//!   Zipf(θ) rank distribution lands entirely on core 0 (θ = 0.99 puts
//!   ~83% of draws there with 4 cores × 1024 keys) while the siblings
//!   starve — the worst case EREW admits.
//!
//! Clients are closed-loop and pipelined: each draws one ring window
//! of GETs, buckets them by owning partition, and drives each bucket
//! through [`RfpClient::call_pipelined`] on its per-core connection.

use std::cell::RefCell;
use std::rc::Rc;

use rand::{Rng, SeedableRng};
use rfp_core::{
    connect, CoreSpec, Reactor, ReactorConfig, ReactorPolicy, RfpClient, RfpConfig, RfpServerConn,
    REQ_HDR, RESP_HDR,
};
use rfp_rnic::{core_threads, Cluster, ClusterProfile, Machine, ThreadCtx};
use rfp_simnet::{CoreSkewReport, MetricsRegistry, SimSpan, SimTime, Simulation};
use rfp_workload::{Op, Zipf};

use crate::bucket::Partition;
use crate::hash::partition_of;
use crate::proto::{KvRequest, KvResponse};
use crate::systems::{apply_to_partition, record_outcome, KvStats};

/// Configuration of the multi-core scaling rig.
#[derive(Clone)]
pub struct CoresConfig {
    /// Simulated server cores (= store partitions = reactor cores).
    pub cores: usize,
    /// Lets idle cores steal from loaded siblings.
    pub steal: bool,
    /// Modeled cross-core handoff cost per stolen request.
    pub handoff_cost: SimSpan,
    /// Requests one steal pass may take before re-scanning its own
    /// partition.
    pub steal_batch: usize,
    /// `None` → uniform key popularity; `Some(θ)` → Zipf(θ) over the
    /// hot-first rank order (the head lands on partition 0).
    pub skew: Option<f64>,
    /// Constructed keys per partition.
    pub keys_per_core: usize,
    /// Extra application CPU per request, on top of the store's own
    /// lookup cost. The default makes the workload *CPU-bound* well
    /// below the NIC ceilings (client out-bound ≈2.1 Mops/machine,
    /// server in-bound ≈11.3 Mops), so the sweep measures core
    /// scaling rather than wire saturation.
    pub extra_process: SimSpan,
    /// Preloaded value size (the headline 32-byte point).
    pub value_len: usize,
    /// Client machines.
    pub client_machines: usize,
    /// Client threads per client machine.
    pub clients_per_machine: usize,
    /// Ring window per connection (= pipelining depth per client draw).
    pub window: usize,
    /// Cluster timing profile.
    pub profile: ClusterProfile,
    /// Server CPU per ring-slot header check.
    pub check_cpu: SimSpan,
    /// Server CPU per posted response.
    pub post_cpu: SimSpan,
    /// Master seed.
    pub seed: u64,
}

impl Default for CoresConfig {
    fn default() -> Self {
        CoresConfig {
            cores: 4,
            steal: true,
            handoff_cost: SimSpan::nanos(150),
            steal_batch: 8,
            skew: None,
            keys_per_core: 1024,
            extra_process: SimSpan::nanos(750),
            value_len: 32,
            client_machines: 12,
            clients_per_machine: 3,
            window: 8,
            profile: ClusterProfile::paper_testbed(),
            check_cpu: SimSpan::nanos(30),
            post_cpu: SimSpan::nanos(50),
            seed: 42,
        }
    }
}

impl CoresConfig {
    /// Total client threads.
    pub fn total_clients(&self) -> usize {
        self.client_machines * self.clients_per_machine
    }

    fn rfp(&self) -> RfpConfig {
        let base = RfpConfig::default();
        let resp = (RESP_HDR + 5 + self.value_len)
            .next_multiple_of(64)
            .max(256)
            .max(base.fetch_size);
        let req = (REQ_HDR + 7 + KEY_LEN).next_multiple_of(64).max(256);
        RfpConfig {
            window: self.window,
            check_cpu: self.check_cpu,
            post_cpu: self.post_cpu,
            resp_capacity: resp,
            req_capacity: req,
            ..base
        }
    }
}

/// Constructed key names are fixed-width (the paper's 16-byte keys).
const KEY_LEN: usize = 16;

/// Builds the rank-ordered keyspace described in the module docs:
/// `cores × keys_per_core` names, each partition owning exactly
/// `keys_per_core` of them, ordered hot-first (skewed) or round-robin
/// (uniform).
pub fn build_keyspace(cores: usize, keys_per_core: usize, hot_first: bool) -> Vec<Vec<u8>> {
    assert!(cores > 0 && keys_per_core > 0);
    let mut buckets: Vec<Vec<Vec<u8>>> = vec![Vec::new(); cores];
    let mut i = 0u64;
    while buckets.iter().any(|b| b.len() < keys_per_core) {
        let key = format!("key{i:013}").into_bytes();
        debug_assert_eq!(key.len(), KEY_LEN);
        let p = partition_of(&key, cores);
        if buckets[p].len() < keys_per_core {
            buckets[p].push(key);
        }
        i += 1;
    }
    if hot_first {
        buckets.concat()
    } else {
        let mut keys = Vec::with_capacity(cores * keys_per_core);
        for r in 0..keys_per_core {
            for b in &buckets {
                keys.push(b[r].clone());
            }
        }
        keys
    }
}

/// A running multi-core system: clients loop forever; warm up, call
/// [`CoresKv::reset_measurements`], run the window, read the stats.
pub struct CoresKv {
    /// The simulated cluster (machine 0 is the server).
    pub cluster: Cluster,
    /// Shared measurements.
    pub stats: Rc<KvStats>,
    /// Instrument registry (`nic.*`, `kv.*`, `serve.core.*`).
    pub registry: MetricsRegistry,
    /// The serve reactor (per-core accessors, skew report).
    pub reactor: Reactor,
    /// The server machine.
    pub server_machine: Rc<Machine>,
    /// The per-core server threads.
    pub core_threads: Vec<Rc<ThreadCtx>>,
    /// All client threads.
    pub client_threads: Vec<Rc<ThreadCtx>>,
    /// All RFP client endpoints.
    pub rfp_clients: Vec<Rc<RfpClient>>,
    /// Server-side connections grouped by owning core.
    pub server_conns: Vec<Vec<Rc<RfpServerConn>>>,
}

impl CoresKv {
    /// Discards warm-up: stats, NIC counters, thread clocks, reactor
    /// meters, and the registry diff baseline.
    pub fn reset_measurements(&self) {
        self.stats.reset();
        for i in 0..self.cluster.len() {
            self.cluster.machine(i).nic().reset_counters();
        }
        for t in &self.client_threads {
            t.reset_utilization();
        }
        for c in &self.rfp_clients {
            c.stats().reset();
        }
        self.reactor.reset_measurements();
        self.registry.reset();
    }

    /// Requests executed per core (own plus stolen).
    pub fn served_per_core(&self) -> Vec<u64> {
        (0..self.reactor.cores())
            .map(|i| self.reactor.served(i))
            .collect()
    }

    /// The point-in-time per-core load rollup.
    pub fn skew_report(&self, now: SimTime) -> CoreSkewReport {
        self.reactor.skew_report(now)
    }
}

/// Spawns the multi-core system: one server machine running an
/// N-core [`Reactor`] (plain policy) over an EREW-partitioned bucket
/// store, plus closed-loop pipelined GET clients sampling the
/// constructed keyspace.
pub fn spawn_cores_kv(sim: &mut Simulation, cfg: &CoresConfig) -> CoresKv {
    let cluster = Cluster::new(sim, cfg.profile.clone(), 1 + cfg.client_machines);
    let server_m = cluster.machine(0);
    let stats = Rc::new(KvStats::default());
    let registry = MetricsRegistry::new();
    cluster.attach_metrics(&registry);
    stats.register_into(&registry);
    let rfp_cfg = cfg.rfp();

    // The constructed keyspace and its preloaded partitions.
    let keys = Rc::new(build_keyspace(
        cfg.cores,
        cfg.keys_per_core,
        cfg.skew.is_some(),
    ));
    let value = vec![0x56u8; cfg.value_len];
    let partitions: Vec<Rc<RefCell<Partition>>> = (0..cfg.cores)
        .map(|_| Rc::new(RefCell::new(Partition::new(cfg.keys_per_core.max(64) / 4))))
        .collect();
    for key in keys.iter() {
        let p = partition_of(key, cfg.cores);
        partitions[p].borrow_mut().put(key, &value);
    }

    // Clients: one connection per (client thread, core); requests are
    // routed to the core owning the key's partition (EREW).
    let mut server_conns: Vec<Vec<Rc<RfpServerConn>>> =
        (0..cfg.cores).map(|_| Vec::new()).collect();
    let mut rfp_clients = Vec::new();
    let mut client_threads = Vec::new();
    let zipf = cfg.skew.map(|theta| Zipf::new(keys.len() as u64, theta));
    for m in 0..cfg.client_machines {
        let client_m = cluster.machine(1 + m);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            let mut conns: Vec<Rc<RfpClient>> = Vec::with_capacity(cfg.cores);
            for core_conns in server_conns.iter_mut() {
                let (cl, sc) = connect(
                    &client_m,
                    &server_m,
                    cluster.qp(1 + m, 0),
                    cluster.qp(0, 1 + m),
                    rfp_cfg.clone(),
                );
                let cl = Rc::new(cl);
                rfp_clients.push(Rc::clone(&cl));
                conns.push(cl);
                core_conns.push(Rc::new(sc));
            }

            let st = Rc::clone(&stats);
            let keys = Rc::clone(&keys);
            let zipf = zipf.clone();
            let ncores = cfg.cores;
            let window = cfg.window;
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            sim.spawn(async move {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                loop {
                    // One ring window of GETs *per core*, bucketed by
                    // owner; each bucket streams through its
                    // connection's W-slot ring in one pipelined call,
                    // so a draw costs ~one round trip per loaded
                    // partition rather than one per request.
                    let picks: Vec<usize> = (0..window * ncores)
                        .map(|_| match &zipf {
                            Some(z) => z.sample(&mut rng) as usize,
                            None => rng.gen_range(0..keys.len()),
                        })
                        .collect();
                    let mut buckets: Vec<Vec<usize>> = (0..ncores).map(|_| Vec::new()).collect();
                    for &k in &picks {
                        buckets[partition_of(&keys[k], ncores)].push(k);
                    }
                    for (p, bucket) in buckets.iter().enumerate() {
                        if bucket.is_empty() {
                            continue;
                        }
                        let reqs: Vec<Vec<u8>> = bucket
                            .iter()
                            .map(|&k| KvRequest::Get { key: &keys[k] }.encode())
                            .collect();
                        let outs = conns[p].call_pipelined(&thread, &reqs).await;
                        for (&k, out) in bucket.iter().zip(&outs) {
                            let resp = KvResponse::decode(&out.data).expect("server response");
                            let op = Op::Get {
                                key: keys[k].clone(),
                            };
                            record_outcome(&st, &op, &resp, out.info.latency);
                        }
                    }
                }
            });
        }
    }

    // The reactor: one core per partition, stealing as configured.
    let threads = core_threads(&server_m, "s", cfg.cores);
    let specs: Vec<CoreSpec> = (0..cfg.cores)
        .map(|i| {
            let part = Rc::clone(&partitions[i]);
            let extra = cfg.extra_process;
            CoreSpec {
                thread: Rc::clone(&threads[i]),
                conns: server_conns[i].clone(),
                handler: Box::new(move |req: &[u8]| {
                    let parsed = KvRequest::decode(req).expect("client sent well-formed request");
                    let (resp, work) = apply_to_partition(&mut part.borrow_mut(), &parsed);
                    (resp.encode(), work + extra)
                }),
            }
        })
        .collect();
    let reactor = Reactor::new(
        ReactorConfig {
            steal: cfg.steal,
            handoff_cost: cfg.handoff_cost,
            steal_batch: cfg.steal_batch,
            registry: Some(registry.clone()),
            recorder: None,
        },
        specs,
        SimSpan::nanos(100),
        ReactorPolicy::Plain,
    );
    for i in 0..cfg.cores {
        sim.spawn(reactor.run_core(i));
    }

    CoresKv {
        cluster,
        stats,
        registry,
        reactor,
        server_machine: server_m,
        core_threads: threads,
        client_threads,
        rfp_clients,
        server_conns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyspace_partitions_are_exact() {
        for cores in [1, 2, 4, 8] {
            let keys = build_keyspace(cores, 64, false);
            assert_eq!(keys.len(), cores * 64);
            let mut counts = vec![0usize; cores];
            for k in &keys {
                counts[partition_of(k, cores)] += 1;
            }
            assert!(counts.iter().all(|&c| c == 64), "{counts:?}");
        }
    }

    #[test]
    fn hot_first_head_lands_on_partition_zero() {
        let per = 64;
        let keys = build_keyspace(4, per, true);
        for k in &keys[..per] {
            assert_eq!(partition_of(k, 4), 0);
        }
    }

    #[test]
    fn uniform_order_interleaves_partitions() {
        let keys = build_keyspace(4, 64, false);
        for (r, k) in keys.iter().enumerate() {
            assert_eq!(partition_of(k, 4), r % 4);
        }
    }
}
