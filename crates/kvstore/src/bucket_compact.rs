//! The cacheline-faithful variant of Jakiro's table.
//!
//! The paper's footnote 4: "Each slot is 8-byte so that a bucket fills
//! in a cacheline." [`crate::bucket::Partition`] inlines the pairs into
//! its slots for simplicity; this module implements the layout the
//! paper actually describes: buckets of eight 8-byte slots — a tag for
//! early rejection plus an index into a separate entry arena — with
//! strict intra-bucket LRU kept in a sidecar recency array. Lookups
//! touch one "cacheline" of slots and (on a tag hit) one arena entry.
//!
//! Behaviour is identical to `Partition` (the property suite checks
//! both against the same model); the difference is memory layout, which
//! the `substrates` Criterion bench compares.

use crate::hash::hash_bytes;

/// Slots per bucket (one cacheline of 8-byte slots).
pub const COMPACT_SLOTS: usize = 8;

const SEED: u64 = 0x0063_6F6D_7061_6374;
/// Slot encoding: `[tag:16][arena_index+1:48]`; 0 = vacant.
const INDEX_BITS: u32 = 48;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;

struct Entry {
    hash: u64,
    key: Box<[u8]>,
    value: Box<[u8]>,
}

/// One EREW partition with 8-byte slots over an entry arena.
pub struct CompactPartition {
    /// `buckets[b][s]` is an encoded slot.
    buckets: Vec<[u64; COMPACT_SLOTS]>,
    /// Last-use stamps, parallel to `buckets`.
    recency: Vec<[u64; COMPACT_SLOTS]>,
    arena: Vec<Option<Entry>>,
    free: Vec<usize>,
    clock: u64,
    entries: usize,
    evictions: u64,
}

fn tag_of(hash: u64) -> u64 {
    // High 16 bits, never zero (zero tags would alias vacancy when the
    // index is also small); fold bit 0 in to avoid an all-zero tag.
    let t = hash >> 48;
    if t == 0 {
        1
    } else {
        t
    }
}

fn encode(tag: u64, arena_idx: usize) -> u64 {
    (tag << INDEX_BITS) | ((arena_idx as u64 + 1) & INDEX_MASK)
}

fn decode(slot: u64) -> Option<(u64, usize)> {
    if slot == 0 {
        return None;
    }
    Some((slot >> INDEX_BITS, (slot & INDEX_MASK) as usize - 1))
}

impl CompactPartition {
    /// Creates a partition with `buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "partition needs at least one bucket");
        CompactPartition {
            buckets: vec![[0; COMPACT_SLOTS]; buckets],
            recency: vec![[0; COMPACT_SLOTS]; buckets],
            arena: Vec::new(),
            free: Vec::new(),
            clock: 0,
            entries: 0,
            evictions: 0,
        }
    }

    /// Stored pairs.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the partition stores nothing.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// LRU evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn bucket_of(&self, hash: u64) -> usize {
        (hash % self.buckets.len() as u64) as usize
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn find_slot(&self, key: &[u8], hash: u64) -> Option<(usize, usize, usize)> {
        let b = self.bucket_of(hash);
        let tag = tag_of(hash);
        for (s, &slot) in self.buckets[b].iter().enumerate() {
            if let Some((t, idx)) = decode(slot) {
                if t == tag {
                    let entry = self.arena[idx].as_ref().expect("live slot");
                    if entry.hash == hash && *entry.key == *key {
                        return Some((b, s, idx));
                    }
                }
            }
        }
        None
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &[u8]) -> Option<&[u8]> {
        let hash = hash_bytes(SEED, key);
        let (b, s, idx) = self.find_slot(key, hash)?;
        let stamp = self.tick();
        self.recency[b][s] = stamp;
        Some(&self.arena[idx].as_ref().expect("live slot").value)
    }

    fn alloc(&mut self, entry: Entry) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.arena[i] = Some(entry);
                i
            }
            None => {
                self.arena.push(Some(entry));
                self.arena.len() - 1
            }
        }
    }

    /// Inserts or updates `key`, evicting the bucket's LRU pair when
    /// full. Returns the evicted key, if any.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let hash = hash_bytes(SEED, key);
        if let Some((b, s, idx)) = self.find_slot(key, hash) {
            let stamp = self.tick();
            self.recency[b][s] = stamp;
            self.arena[idx].as_mut().expect("live slot").value = value.into();
            return None;
        }
        let entry = Entry {
            hash,
            key: key.into(),
            value: value.into(),
        };
        let b = self.bucket_of(hash);
        let tag = tag_of(hash);
        let stamp = self.tick();
        // A vacant slot?
        if let Some(s) = self.buckets[b].iter().position(|&slot| slot == 0) {
            let idx = self.alloc(entry);
            self.buckets[b][s] = encode(tag, idx);
            self.recency[b][s] = stamp;
            self.entries += 1;
            return None;
        }
        // Strict intra-bucket LRU eviction.
        let victim_s = (0..COMPACT_SLOTS)
            .min_by_key(|&s| self.recency[b][s])
            .expect("bucket has slots");
        let (_, victim_idx) = decode(self.buckets[b][victim_s]).expect("full bucket slot");
        let old = self.arena[victim_idx].take().expect("live slot");
        self.free.push(victim_idx);
        let idx = self.alloc(entry);
        self.buckets[b][victim_s] = encode(tag, idx);
        self.recency[b][victim_s] = stamp;
        self.evictions += 1;
        Some(old.key.into_vec())
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let hash = hash_bytes(SEED, key);
        let (b, s, idx) = self.find_slot(key, hash)?;
        self.buckets[b][s] = 0;
        self.recency[b][s] = 0;
        let entry = self.arena[idx].take().expect("live slot");
        self.free.push(idx);
        self.entries -= 1;
        Some(entry.value.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_encoding_round_trips() {
        for (tag, idx) in [(1u64, 0usize), (0xFFFF, 42), (0x1234, (1 << 40) - 1)] {
            let slot = encode(tag, idx);
            assert_eq!(decode(slot), Some((tag, idx)));
        }
        assert_eq!(decode(0), None);
    }

    #[test]
    fn get_put_remove_round_trip() {
        let mut p = CompactPartition::new(8);
        assert!(p.put(b"k", b"v1").is_none());
        assert_eq!(p.get(b"k"), Some(&b"v1"[..]));
        assert!(p.put(b"k", b"v2").is_none());
        assert_eq!(p.get(b"k"), Some(&b"v2"[..]));
        assert_eq!(p.remove(b"k"), Some(b"v2".to_vec()));
        assert_eq!(p.get(b"k"), None);
        assert!(p.is_empty());
    }

    #[test]
    fn full_bucket_evicts_lru() {
        let mut p = CompactPartition::new(1);
        for i in 0..8u8 {
            p.put(&[i], b"v");
        }
        for i in 0..8u8 {
            if i != 5 {
                assert!(p.get(&[i]).is_some());
            }
        }
        let evicted = p.put(b"fresh", b"v").expect("bucket was full");
        assert_eq!(evicted, vec![5]);
        assert_eq!(p.get(&[5u8][..]), None);
        assert_eq!(p.evictions(), 1);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn arena_slots_are_recycled() {
        let mut p = CompactPartition::new(4);
        for round in 0..50u8 {
            p.put(&[round], &[round; 24]);
            assert_eq!(p.remove(&[round]), Some(vec![round; 24]));
        }
        // Only ever one live entry at a time: arena must not grow.
        assert!(p.arena.len() <= 2, "arena grew to {}", p.arena.len());
    }

    #[test]
    fn agrees_with_the_inline_partition() {
        use crate::bucket::Partition;
        let mut a = CompactPartition::new(64);
        let mut b = Partition::new(64);
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..3_000 {
            let k = (next() % 200).to_le_bytes();
            match next() % 3 {
                0 => {
                    let v = (next() % 1000).to_le_bytes();
                    a.put(&k, &v);
                    b.put(&k, &v);
                }
                1 => {
                    // Different hash seeds ⇒ different eviction victims,
                    // so only compare when neither side has evicted.
                    if a.evictions() == 0 && b.evictions() == 0 {
                        assert_eq!(a.get(&k).map(<[u8]>::to_vec), b.get(&k).map(<[u8]>::to_vec));
                    }
                }
                _ => {
                    if a.evictions() == 0 && b.evictions() == 0 {
                        assert_eq!(a.remove(&k), b.remove(&k));
                    } else {
                        a.remove(&k);
                        b.remove(&k);
                    }
                }
            }
        }
    }
}
