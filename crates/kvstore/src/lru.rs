//! An O(1) capacity-bounded LRU map.
//!
//! Substrate for the RDMA-Memcached comparator (whose shared LRU lists
//! are the serialisation bottleneck the paper measures, §4.4.1) and for
//! its per-thread hot-key cache. Implemented as a hash map over an
//! index slab holding an intrusive doubly-linked recency list.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with fixed capacity.
///
/// # Examples
///
/// ```
/// use rfp_kvstore::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.put("a", 1);
/// cache.put("b", 2);
/// cache.get(&"a"); // refresh "a": "b" becomes the victim
/// assert_eq!(cache.put("c", 3), Some(("b", 2)));
/// assert!(cache.contains(&"a") && cache.contains(&"c"));
/// ```
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    /// Slab of nodes; `None` slots are free (tracked in `free`).
    nodes: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// Creates a cache evicting beyond `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn node(&self, idx: usize) -> &Node<K, V> {
        self.nodes[idx].as_ref().expect("live node")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<K, V> {
        self.nodes[idx].as_mut().expect("live node")
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        if prev != NIL {
            self.node_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.node_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most-recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(&self.node(idx).value)
    }

    /// Looks up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.node(i).value)
    }

    /// Whether `key` is present (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts or updates `key`, marking it most-recently used. Returns
    /// the entry evicted to make room, if any.
    pub fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.node_mut(idx).value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return None;
        }
        let evicted = if self.map.len() == self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let node = self.nodes[victim].take().expect("tail is live");
            self.map.remove(&node.key);
            self.free.push(victim);
            Some((node.key, node.value))
        } else {
            None
        };
        let fresh = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Some(fresh);
                i
            }
            None => {
                self.nodes.push(Some(fresh));
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let node = self.nodes[idx].take().expect("mapped node is live");
        self.free.push(idx);
        Some(node.value)
    }

    /// Keys from most- to least-recently used (test/diagnostic helper).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            let n = self.node(cur);
            out.push(n.key.clone());
            cur = n.next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        assert!(c.put(1, "a").is_none());
        assert!(c.put(2, "b").is_none());
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(&1), Some(&"a"));
        let evicted = c.put(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        assert!(!c.contains(&2));
    }

    #[test]
    fn update_refreshes_recency_without_eviction() {
        let mut c = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        assert!(c.put(1, 11).is_none());
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.keys_by_recency(), vec![1, 2]);
        assert_eq!(c.put(3, 30), Some((2, 20)));
    }

    #[test]
    fn remove_frees_capacity() {
        let mut c = LruCache::new(2);
        c.put(1, "a");
        c.put(2, "b");
        assert_eq!(c.remove(&1), Some("a"));
        assert_eq!(c.len(), 1);
        assert!(c.put(3, "c").is_none(), "freed slot must be reused");
        assert_eq!(c.remove(&99), None);
    }

    #[test]
    fn recency_order_is_exact() {
        let mut c = LruCache::new(4);
        for k in 1..=4 {
            c.put(k, ());
        }
        c.get(&2);
        c.get(&1);
        assert_eq!(c.keys_by_recency(), vec![1, 2, 4, 3]);
    }

    #[test]
    fn single_slot_cache() {
        let mut c = LruCache::new(1);
        c.put("x", 1);
        assert_eq!(c.put("y", 2), Some(("x", 1)));
        assert_eq!(c.get(&"y"), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u8, u8>::new(0);
    }

    #[test]
    fn model_check_against_reference() {
        // Cross-check against a naive Vec-based model under a pseudo-
        // random op stream.
        let mut c = LruCache::new(8);
        let mut model: Vec<(u32, u32)> = Vec::new(); // front = MRU
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..10_000 {
            let k = next() % 16;
            if next() % 2 == 0 {
                let v = next();
                c.put(k, v);
                if let Some(pos) = model.iter().position(|e| e.0 == k) {
                    model.remove(pos);
                }
                model.insert(0, (k, v));
                if model.len() > 8 {
                    model.pop();
                }
            } else {
                let got = c.get(&k).copied();
                let expect = model.iter().position(|e| e.0 == k).map(|pos| {
                    let e = model.remove(pos);
                    model.insert(0, e);
                    e.1
                });
                assert_eq!(got, expect);
            }
            assert_eq!(c.len(), model.len());
            assert_eq!(
                c.keys_by_recency(),
                model.iter().map(|e| e.0).collect::<Vec<_>>()
            );
        }
    }
}
