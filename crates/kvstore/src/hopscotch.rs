//! A FaRM-style store: hopscotch hashing with inline, self-verifying
//! cells, read by clients in **one** large one-sided READ.
//!
//! The paper's §5 discussion of FaRM: "FaRM uses Hopscotch hashing that
//! leads to something like batching the requests. With FaRM, a client
//! needs to fetch `N·(Sk+Sv)` data to get a single key-value pair, where
//! `N` is usually larger than 6 … a lot of the bandwidth and MOPS will
//! be wasted if only a few data in the `N` fetched key-value pairs are
//! used."
//!
//! This module reproduces that design point: every key lives within `H`
//! cells of its home bucket (the hopscotch *neighborhood*), each cell
//! inlines `[klen][vlen][key][value][crc]`, and a GET is a single READ
//! of the whole `H`-cell neighborhood — one op, `H × cell` bytes. The
//! trade against Jakiro is then measurable: fewer server in-bound *ops*
//! per GET than Pilaf (1 vs ~2.6), far more *bytes* than RFP, and PUTs
//! still need the server (as in FaRM).
//!
//! The table is laid out in a registered memory region with `H − 1`
//! trailing spill cells so neighborhoods never wrap.

use std::cell::RefCell;
use std::rc::Rc;

use rfp_paradigms::BypassClient;
use rfp_rnic::{Machine, MemRegion, ThreadCtx};
use rfp_simnet::SimSpan;

use crate::crc64::crc64;
use crate::hash::hash_bytes;

/// Neighborhood size (FaRM's `H`; the paper's `N > 6` fetch factor).
pub const NEIGHBORHOOD: usize = 8;

const SEED: u64 = 0x0066_6172_6D68_6F70;
/// Cell header: `[klen:u16][vlen:u32]`; crc trails the payload.
const CELL_HDR: usize = 6;

/// Errors from server-side mutations.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HopscotchError {
    /// No free cell could be hopped into the key's neighborhood.
    Full,
    /// Key + value exceed the cell size.
    EntryTooLarge,
}

impl std::fmt::Display for HopscotchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HopscotchError::Full => write!(f, "hopscotch neighborhood full"),
            HopscotchError::EntryTooLarge => write!(f, "entry exceeds cell size"),
        }
    }
}

impl std::error::Error for HopscotchError {}

/// Client-visible geometry.
#[derive(Clone)]
pub struct FarmView {
    /// The inline cell table.
    pub table: Rc<MemRegion>,
    /// Home buckets (cells `0..buckets`; spill up to `buckets + H - 1`).
    pub buckets: usize,
    /// Bytes per cell.
    pub cell_size: usize,
}

impl FarmView {
    /// The key's home bucket.
    pub fn home_of(&self, key: &[u8]) -> usize {
        (hash_bytes(SEED, key) % self.buckets as u64) as usize
    }

    /// Byte range of the key's whole neighborhood (single READ).
    pub fn neighborhood_range(&self, key: &[u8]) -> (usize, usize) {
        let home = self.home_of(key);
        (home * self.cell_size, NEIGHBORHOOD * self.cell_size)
    }
}

/// Server-side owner of the store.
pub struct FarmStore {
    view: FarmView,
    /// Server-side occupancy map (`Some(home)` per occupied cell).
    homes: RefCell<Vec<Option<usize>>>,
    entries: RefCell<usize>,
    /// CPU gap splitting in-place updates (torn-read window, as in the
    /// Pilaf store).
    pub update_gap: SimSpan,
}

impl FarmStore {
    /// Allocates a table of `buckets` home buckets on `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `cell_size` cannot hold the
    /// header and checksum.
    pub fn new(machine: &Rc<Machine>, buckets: usize, cell_size: usize) -> Self {
        assert!(buckets > 0, "empty table");
        assert!(cell_size > CELL_HDR + 8, "cell too small");
        let cells = buckets + NEIGHBORHOOD - 1;
        let table = machine.alloc_mr(cells * cell_size);
        // Checksummed-empty cells so clients always validate reads.
        let empty = Self::encode_cell(cell_size, b"", b"");
        for c in 0..cells {
            table.write_local(c * cell_size, &empty);
        }
        FarmStore {
            view: FarmView {
                table,
                buckets,
                cell_size,
            },
            homes: RefCell::new(vec![None; cells]),
            entries: RefCell::new(0),
            update_gap: SimSpan::nanos(400),
        }
    }

    /// The client-visible geometry.
    pub fn view(&self) -> FarmView {
        self.view.clone()
    }

    /// Stored entries.
    pub fn len(&self) -> usize {
        *self.entries.borrow()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn encode_cell(cell_size: usize, key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(cell_size);
        bytes.extend_from_slice(&(key.len() as u16).to_le_bytes());
        bytes.extend_from_slice(&(value.len() as u32).to_le_bytes());
        bytes.extend_from_slice(key);
        bytes.extend_from_slice(value);
        let crc = crc64(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.resize(cell_size, 0);
        bytes
    }

    /// Decodes a cell; `None` on checksum failure, `Some(None)` when the
    /// cell is validly empty.
    #[allow(clippy::type_complexity)]
    pub fn decode_cell(bytes: &[u8]) -> Option<Option<(Vec<u8>, Vec<u8>)>> {
        if bytes.len() < CELL_HDR + 8 {
            return None;
        }
        let klen = u16::from_le_bytes(bytes[0..2].try_into().ok()?) as usize;
        let vlen = u32::from_le_bytes(bytes[2..6].try_into().ok()?) as usize;
        let body_end = CELL_HDR + klen + vlen;
        if body_end + 8 > bytes.len() {
            return None;
        }
        let crc = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().ok()?);
        if crc64(&bytes[..body_end]) != crc {
            return None;
        }
        if klen == 0 {
            return Some(None);
        }
        Some(Some((
            bytes[CELL_HDR..CELL_HDR + klen].to_vec(),
            bytes[CELL_HDR + klen..body_end].to_vec(),
        )))
    }

    fn cell_off(&self, cell: usize) -> usize {
        cell * self.view.cell_size
    }

    fn read_cell_key(&self, cell: usize) -> Option<Vec<u8>> {
        let bytes = self
            .view
            .table
            .read_local(self.cell_off(cell), self.view.cell_size);
        Self::decode_cell(&bytes)
            .expect("server-local cells are never torn")
            .map(|(k, _)| k)
    }

    fn find_cell(&self, key: &[u8]) -> Option<usize> {
        let home = self.view.home_of(key);
        let homes = self.homes.borrow();
        (home..home + NEIGHBORHOOD)
            .find(|&c| homes[c] == Some(home) && self.read_cell_key(c).as_deref() == Some(key))
    }

    /// Server-local lookup.
    pub fn lookup_local(&self, key: &[u8]) -> Option<Vec<u8>> {
        let cell = self.find_cell(key)?;
        let bytes = self
            .view
            .table
            .read_local(self.cell_off(cell), self.view.cell_size);
        Self::decode_cell(&bytes)
            .expect("server-local cells are never torn")
            .map(|(_, v)| v)
    }

    fn write_cell(&self, cell: usize, key: &[u8], value: &[u8]) {
        let bytes = Self::encode_cell(self.view.cell_size, key, value);
        self.view.table.write_local(self.cell_off(cell), &bytes);
    }

    /// Atomic insert-or-update for preloading (no torn window).
    pub fn insert_local(&self, key: &[u8], value: &[u8]) -> Result<(), HopscotchError> {
        if CELL_HDR + key.len() + value.len() + 8 > self.view.cell_size {
            return Err(HopscotchError::EntryTooLarge);
        }
        if let Some(cell) = self.find_cell(key) {
            self.write_cell(cell, key, value);
            return Ok(());
        }
        let cell = self.make_room(self.view.home_of(key))?;
        self.write_cell(cell, key, value);
        self.homes.borrow_mut()[cell] = Some(self.view.home_of(key));
        *self.entries.borrow_mut() += 1;
        Ok(())
    }

    /// In-place update with a torn window (server PUT path); inserts
    /// when absent.
    pub async fn put(
        &self,
        thread: &ThreadCtx,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), HopscotchError> {
        if CELL_HDR + key.len() + value.len() + 8 > self.view.cell_size {
            return Err(HopscotchError::EntryTooLarge);
        }
        if let Some(cell) = self.find_cell(key) {
            let bytes = Self::encode_cell(self.view.cell_size, key, value);
            let off = self.cell_off(cell);
            let half = bytes.len() / 2;
            self.view.table.write_local(off, &bytes[..half]);
            thread.busy(self.update_gap).await;
            self.view.table.write_local(off + half, &bytes[half..]);
            return Ok(());
        }
        self.insert_local(key, value)
    }

    /// Removes `key`; returns whether it existed.
    pub fn remove_local(&self, key: &[u8]) -> bool {
        let Some(cell) = self.find_cell(key) else {
            return false;
        };
        self.write_cell(cell, b"", b"");
        self.homes.borrow_mut()[cell] = None;
        *self.entries.borrow_mut() -= 1;
        true
    }

    /// Finds (or hops free) a cell inside `home`'s neighborhood —
    /// the classic hopscotch displacement.
    fn make_room(&self, home: usize) -> Result<usize, HopscotchError> {
        let cells = self.homes.borrow().len();
        // Nearest free cell at or after home.
        let mut free = {
            let homes = self.homes.borrow();
            (home..cells).find(|&c| homes[c].is_none())
        }
        .ok_or(HopscotchError::Full)?;

        while free >= home + NEIGHBORHOOD {
            // Hop: find an entry in (free-H, free) that may move to
            // `free` (its own neighborhood covers `free`).
            let candidate = {
                let homes = self.homes.borrow();
                (free.saturating_sub(NEIGHBORHOOD - 1)..free)
                    .find(|&j| homes[j].is_some_and(|h| h + NEIGHBORHOOD > free))
            };
            let Some(j) = candidate else {
                return Err(HopscotchError::Full);
            };
            // Move entry j → free.
            let bytes = self
                .view
                .table
                .read_local(self.cell_off(j), self.view.cell_size);
            self.view.table.write_local(self.cell_off(free), &bytes);
            let mut homes = self.homes.borrow_mut();
            homes[free] = homes[j].take();
            drop(homes);
            self.write_cell(j, b"", b"");
            free = j;
        }
        Ok(free)
    }
}

/// Outcome of a client-side FaRM GET.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FarmGet {
    /// The value, if present.
    pub value: Option<Vec<u8>>,
    /// One-sided ops used (1 unless a torn cell forced a reread).
    pub ops: u32,
    /// Bytes fetched (`H × cell` per read — the §5 bandwidth cost).
    pub bytes: u64,
    /// Checksum retries.
    pub crc_retries: u32,
}

/// Performs one FaRM-style GET: a single READ of the key's whole
/// neighborhood, rereading on checksum failure.
pub async fn farm_get(
    client: &BypassClient,
    thread: &ThreadCtx,
    view: &FarmView,
    key: &[u8],
) -> FarmGet {
    const MAX_CRC_RETRIES: u32 = 64;
    let (off, len) = view.neighborhood_range(key);
    let mut ops = 0u32;
    let mut bytes = 0u64;
    let mut crc_retries = 0u32;
    'reread: loop {
        ops += 1;
        bytes += len as u64;
        let blob = client.fetch(thread, &view.table, off, len).await;
        for c in 0..NEIGHBORHOOD {
            let cell = &blob[c * view.cell_size..(c + 1) * view.cell_size];
            match FarmStore::decode_cell(cell) {
                Some(Some((k, v))) if k == key => {
                    return FarmGet {
                        value: Some(v),
                        ops,
                        bytes,
                        crc_retries,
                    };
                }
                Some(_) => {}
                None => {
                    // Torn cell (racing PUT): refetch the neighborhood.
                    crc_retries += 1;
                    if crc_retries >= MAX_CRC_RETRIES {
                        return FarmGet {
                            value: None,
                            ops,
                            bytes,
                            crc_retries,
                        };
                    }
                    continue 'reread;
                }
            }
        }
        return FarmGet {
            value: None,
            ops,
            bytes,
            crc_retries,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_rnic::{Cluster, ClusterProfile};
    use rfp_simnet::Simulation;

    fn store() -> (Simulation, FarmStore) {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let store = FarmStore::new(&cluster.machine(0), 64, 96);
        (sim, store)
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let (_sim, s) = store();
        s.insert_local(b"alpha", b"one").expect("room");
        s.insert_local(b"beta", b"two").expect("room");
        assert_eq!(s.lookup_local(b"alpha"), Some(b"one".to_vec()));
        assert_eq!(s.lookup_local(b"beta"), Some(b"two".to_vec()));
        assert_eq!(s.lookup_local(b"gamma"), None);
        s.insert_local(b"alpha", b"uno").expect("update");
        assert_eq!(s.lookup_local(b"alpha"), Some(b"uno".to_vec()));
        assert_eq!(s.len(), 2);
        assert!(s.remove_local(b"alpha"));
        assert!(!s.remove_local(b"alpha"));
        assert_eq!(s.lookup_local(b"alpha"), None);
    }

    #[test]
    fn displacement_keeps_entries_findable() {
        let (_sim, s) = store();
        // Fill to a load where hopping must happen.
        let mut stored = Vec::new();
        for i in 0..48u32 {
            let key = i.to_le_bytes();
            if s.insert_local(&key, &[i as u8; 24]).is_ok() {
                stored.push(key);
            }
        }
        assert!(stored.len() >= 40, "unexpectedly early fill failure");
        for key in &stored {
            let v = s.lookup_local(key).expect("hopped entries stay findable");
            assert_eq!(v[0], key[0]);
        }
    }

    #[test]
    fn entries_stay_in_their_neighborhood() {
        let (_sim, s) = store();
        for i in 0..40u32 {
            let _ = s.insert_local(&i.to_le_bytes(), b"v");
        }
        let homes = s.homes.borrow();
        for (cell, home) in homes.iter().enumerate() {
            if let Some(h) = home {
                assert!(
                    cell >= *h && cell < *h + NEIGHBORHOOD,
                    "cell {cell} home {h}"
                );
            }
        }
    }

    #[test]
    fn oversized_entry_rejected() {
        let (_sim, s) = store();
        assert_eq!(
            s.insert_local(b"key", &[0u8; 96]),
            Err(HopscotchError::EntryTooLarge)
        );
    }

    #[test]
    fn one_sided_get_finds_values_in_one_read() {
        let mut sim = Simulation::new(3);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
        let server = cluster.machine(0);
        let store = FarmStore::new(&server, 128, 96);
        store.insert_local(b"remote", b"readable").expect("room");
        let view = store.view();
        let client = BypassClient::new(cluster.qp(1, 0), 4096);
        let t = cluster.machine(1).thread("c");
        let done = Rc::new(std::cell::Cell::new(false));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            let got = farm_get(&client, &t, &view, b"remote").await;
            assert_eq!(got.value.as_deref(), Some(&b"readable"[..]));
            assert_eq!(got.ops, 1, "FaRM GET is one neighborhood read");
            assert_eq!(got.bytes, (NEIGHBORHOOD * 96) as u64);
            let miss = farm_get(&client, &t, &view, b"absent").await;
            assert_eq!(miss.value, None);
            assert_eq!(miss.ops, 1);
            d.set(true);
        });
        sim.run();
        assert!(done.get());
    }
}
