//! In-memory key-value systems for the RFP evaluation.
//!
//! The paper validates RFP with **Jakiro**, an in-memory key-value store
//! (§4.1), and compares it against three other systems. This crate
//! implements all four on the simulated cluster, plus every data
//! structure they need, from scratch:
//!
//! | System | Transport | Store | Module |
//! |---|---|---|---|
//! | Jakiro | RFP (remote fetching) | EREW bucketed 8-slot LRU table | [`bucket`], [`systems::spawn_jakiro`] |
//! | ServerReply | server-reply | same table | [`systems::spawn_server_reply_kv`] |
//! | RDMA-Memcached-like | server-reply | shared [`lru::LruCache`] behind a lock | [`mcd`], [`systems::spawn_memcached`] |
//! | Pilaf-like | server-bypass GET / server-reply PUT | 3-way cuckoo + CRC64 ([`PilafStore`], [`crc64()`](crc64())) | [`systems::spawn_pilaf`] |

pub mod bucket;
pub mod bucket_compact;
pub mod cores;
pub mod crc64;
pub mod hash;
pub mod hopscotch;
pub mod lru;
pub mod mcd;
pub mod proto;
pub mod replica;
pub mod sharded;
pub mod systems;

mod cuckoo;

pub use bucket::{Partition, PutOutcome, SLOTS_PER_BUCKET};
pub use bucket_compact::{CompactPartition, COMPACT_SLOTS};
pub use cores::{build_keyspace, spawn_cores_kv, CoresConfig, CoresKv};
pub use crc64::{crc64, Crc64};
pub use cuckoo::{bypass_get, BypassGet, CuckooError, PilafStore, PilafView, SLOT_SIZE};
pub use hash::{hash_bytes, partition_of};
pub use hopscotch::{farm_get, FarmGet, FarmStore, FarmView, HopscotchError, NEIGHBORHOOD};
pub use lru::LruCache;
pub use mcd::{McdCosts, McdStore, McdThreadView};
pub use proto::{KvRequest, KvResponse, ProtoError};
pub use replica::{
    backup_serve_loop, primary_serve_loop, AckPolicy, BackupRole, PrimaryRole, ReplicationConfig,
};
pub use sharded::{spawn_sharded_jakiro, ShardedSystem};
pub use systems::{
    spawn_farm, spawn_fleet_kv, spawn_herd, spawn_jakiro, spawn_jakiro_shared, spawn_memcached,
    spawn_pilaf, spawn_server_reply_kv, FleetConfig, FleetKv, KvStats, KvSystem, SystemConfig,
};
