//! The key-value RPC wire protocol shared by Jakiro, ServerReply-KV and
//! the RDMA-Memcached comparator.
//!
//! Requests: `[op:u8][klen:u16][vlen:u32][key][value]`.
//! Responses: `[tag:u8][vlen:u32][value]`.
//! All integers little-endian. The payloads ride inside RFP (or
//! server-reply) buffers, after the transport headers.

/// Decoding failure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer is shorter than its headers claim.
    Truncated,
    /// Unknown op / tag byte.
    BadTag(u8),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message truncated"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t:#x}"),
        }
    }
}

impl std::error::Error for ProtoError {}

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_MULTI_GET: u8 = 4;
const TAG_FOUND: u8 = 1;
const TAG_NOT_FOUND: u8 = 2;
const TAG_STORED: u8 = 3;
const TAG_DELETED: u8 = 4;
const TAG_VALUES: u8 = 5;

/// A decoded request, borrowing from the receive buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum KvRequest<'a> {
    /// Read `key`.
    Get {
        /// The key bytes.
        key: &'a [u8],
    },
    /// Store `value` under `key`.
    Put {
        /// The key bytes.
        key: &'a [u8],
        /// The value bytes.
        value: &'a [u8],
    },
    /// Remove `key`.
    Delete {
        /// The key bytes.
        key: &'a [u8],
    },
    /// Read several keys in one round trip (Memcached's multi-get; a
    /// natural fit for RFP, which amortises the request WRITE and lets
    /// the two-segment fetch carry the batched response).
    MultiGet {
        /// The keys, in request order.
        keys: Vec<&'a [u8]>,
    },
}

impl<'a> KvRequest<'a> {
    /// The request's primary key (the first key for multi-get).
    ///
    /// # Panics
    ///
    /// Panics on an empty multi-get (rejected at encode time).
    pub fn key(&self) -> &'a [u8] {
        match self {
            KvRequest::Get { key } | KvRequest::Put { key, .. } | KvRequest::Delete { key } => key,
            KvRequest::MultiGet { keys } => keys.first().expect("multi-get has keys"),
        }
    }

    /// Serialises into a fresh buffer.
    ///
    /// # Panics
    ///
    /// Panics on an empty multi-get.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvRequest::MultiGet { keys } => {
                assert!(!keys.is_empty(), "multi-get needs at least one key");
                let mut out =
                    Vec::with_capacity(3 + keys.iter().map(|k| 2 + k.len()).sum::<usize>());
                out.push(OP_MULTI_GET);
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for key in keys {
                    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                    out.extend_from_slice(key);
                }
                out
            }
            _ => {
                let (op, key, value): (u8, &[u8], &[u8]) = match self {
                    KvRequest::Get { key } => (OP_GET, key, &[]),
                    KvRequest::Put { key, value } => (OP_PUT, key, value),
                    KvRequest::Delete { key } => (OP_DELETE, key, &[]),
                    KvRequest::MultiGet { .. } => unreachable!("handled above"),
                };
                let mut out = Vec::with_capacity(7 + key.len() + value.len());
                out.push(op);
                out.extend_from_slice(&(key.len() as u16).to_le_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(value);
                out
            }
        }
    }

    /// Parses a request from `buf`.
    pub fn decode(buf: &'a [u8]) -> Result<Self, ProtoError> {
        if buf.is_empty() {
            return Err(ProtoError::Truncated);
        }
        if buf[0] == OP_MULTI_GET {
            if buf.len() < 3 {
                return Err(ProtoError::Truncated);
            }
            let count = u16::from_le_bytes([buf[1], buf[2]]) as usize;
            let mut keys = Vec::with_capacity(count);
            let mut off = 3;
            for _ in 0..count {
                if buf.len() < off + 2 {
                    return Err(ProtoError::Truncated);
                }
                let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
                off += 2;
                if buf.len() < off + klen {
                    return Err(ProtoError::Truncated);
                }
                keys.push(&buf[off..off + klen]);
                off += klen;
            }
            if keys.is_empty() {
                return Err(ProtoError::Truncated);
            }
            return Ok(KvRequest::MultiGet { keys });
        }
        if buf.len() < 7 {
            return Err(ProtoError::Truncated);
        }
        let op = buf[0];
        let klen = u16::from_le_bytes([buf[1], buf[2]]) as usize;
        let vlen = u32::from_le_bytes([buf[3], buf[4], buf[5], buf[6]]) as usize;
        if buf.len() < 7 + klen + vlen {
            return Err(ProtoError::Truncated);
        }
        let key = &buf[7..7 + klen];
        let value = &buf[7 + klen..7 + klen + vlen];
        match op {
            OP_GET => Ok(KvRequest::Get { key }),
            OP_PUT => Ok(KvRequest::Put { key, value }),
            OP_DELETE => Ok(KvRequest::Delete { key }),
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// GET hit, carrying the value.
    Found(Vec<u8>),
    /// GET miss.
    NotFound,
    /// PUT acknowledged.
    Stored,
    /// DELETE processed; `true` when the key existed.
    Deleted(bool),
    /// Multi-get results, one per requested key in order.
    Values(Vec<Option<Vec<u8>>>),
}

impl KvResponse {
    /// Serialises into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            KvResponse::Found(v) => {
                let mut out = Vec::with_capacity(5 + v.len());
                out.push(TAG_FOUND);
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
                out
            }
            KvResponse::NotFound => vec![TAG_NOT_FOUND, 0, 0, 0, 0],
            KvResponse::Stored => vec![TAG_STORED, 0, 0, 0, 0],
            KvResponse::Deleted(found) => vec![TAG_DELETED, u8::from(*found), 0, 0, 0],
            KvResponse::Values(values) => {
                let mut out = Vec::with_capacity(
                    3 + values
                        .iter()
                        .map(|v| 5 + v.as_ref().map_or(0, Vec::len))
                        .sum::<usize>(),
                );
                out.push(TAG_VALUES);
                out.extend_from_slice(&(values.len() as u16).to_le_bytes());
                for v in values {
                    match v {
                        Some(bytes) => {
                            out.push(1);
                            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                            out.extend_from_slice(bytes);
                        }
                        None => {
                            out.push(0);
                            out.extend_from_slice(&0u32.to_le_bytes());
                        }
                    }
                }
                out
            }
        }
    }

    /// Parses a response from `buf`.
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        if buf.len() < 3 {
            return Err(ProtoError::Truncated);
        }
        if buf[0] == TAG_VALUES {
            let count = u16::from_le_bytes([buf[1], buf[2]]) as usize;
            let mut values = Vec::with_capacity(count);
            let mut off = 3;
            for _ in 0..count {
                if buf.len() < off + 5 {
                    return Err(ProtoError::Truncated);
                }
                let present = buf[off] == 1;
                let vlen =
                    u32::from_le_bytes([buf[off + 1], buf[off + 2], buf[off + 3], buf[off + 4]])
                        as usize;
                off += 5;
                if present {
                    if buf.len() < off + vlen {
                        return Err(ProtoError::Truncated);
                    }
                    values.push(Some(buf[off..off + vlen].to_vec()));
                    off += vlen;
                } else {
                    values.push(None);
                }
            }
            return Ok(KvResponse::Values(values));
        }
        if buf.len() < 5 {
            return Err(ProtoError::Truncated);
        }
        let vlen = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]) as usize;
        match buf[0] {
            TAG_FOUND => {
                if buf.len() < 5 + vlen {
                    return Err(ProtoError::Truncated);
                }
                Ok(KvResponse::Found(buf[5..5 + vlen].to_vec()))
            }
            TAG_NOT_FOUND => Ok(KvResponse::NotFound),
            TAG_STORED => Ok(KvResponse::Stored),
            TAG_DELETED => Ok(KvResponse::Deleted(buf[1] == 1)),
            other => Err(ProtoError::BadTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_round_trip() {
        let req = KvRequest::Get { key: b"alpha" };
        let bytes = req.encode();
        assert_eq!(KvRequest::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn put_round_trip() {
        let req = KvRequest::Put {
            key: b"k1",
            value: b"some value bytes",
        };
        let bytes = req.encode();
        assert_eq!(KvRequest::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn response_round_trips() {
        for resp in [
            KvResponse::Found(vec![9; 300]),
            KvResponse::NotFound,
            KvResponse::Stored,
        ] {
            assert_eq!(KvResponse::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn truncated_inputs_error() {
        assert_eq!(KvRequest::decode(&[1, 2]), Err(ProtoError::Truncated));
        let mut bytes = KvRequest::Get { key: b"long-key" }.encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(KvRequest::decode(&bytes), Err(ProtoError::Truncated));
        assert_eq!(
            KvResponse::decode(&[1, 5, 0, 0, 0]),
            Err(ProtoError::Truncated)
        );
    }

    #[test]
    fn bad_tags_error() {
        assert_eq!(
            KvRequest::decode(&[99, 0, 0, 0, 0, 0, 0]),
            Err(ProtoError::BadTag(99))
        );
        assert_eq!(
            KvResponse::decode(&[77, 0, 0, 0, 0]),
            Err(ProtoError::BadTag(77))
        );
    }

    #[test]
    fn empty_value_put_is_legal() {
        let req = KvRequest::Put {
            key: b"k",
            value: b"",
        };
        assert_eq!(KvRequest::decode(&req.encode()).unwrap(), req);
    }
}
