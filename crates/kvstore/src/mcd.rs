//! The RDMA-Memcached comparator store (§4.2, "RDMA-Memcached").
//!
//! OSU's RDMA-Memcached keeps Memcached's architecture: server-reply
//! transport, and server threads that *share* the cache data structures
//! (hash table + LRU lists), coordinating through locking. The paper
//! finds it CPU-bound — 16 threads still cannot saturate the NIC's
//! out-bound capacity — because of that coordination; under skew it
//! speeds up thanks to cache locality on hot keys (Figure 19).
//!
//! The model here is a real capacity-bounded [`LruCache`] guarded by a
//! strictly FIFO [`SimLock`] (the serialized LRU maintenance), plus
//! per-thread costs: parse/pack/memory work outside the lock, lock hold
//! time inside it, both reduced when the key hits the thread's hot-key
//! cache (locality). The constants are calibrated so the modelled system
//! reproduces the paper's measured ceilings (~1.3 MOPS uniform at 16
//! threads, ~2.1 MOPS under skewed 95% GET).

use std::cell::RefCell;
use std::rc::Rc;

use rfp_rnic::ThreadCtx;
use rfp_simnet::{SimLock, SimSpan};

use crate::lru::LruCache;

/// Per-operation CPU/lock costs of the Memcached-style server.
#[derive(Clone, Debug)]
pub struct McdCosts {
    /// Out-of-lock CPU per GET (parse, hash, memory walk, pack).
    pub get_work: SimSpan,
    /// Out-of-lock CPU per PUT (adds allocation).
    pub put_work: SimSpan,
    /// Serialized hold per GET (LRU touch).
    pub get_lock_hold: SimSpan,
    /// Serialized hold per PUT (LRU reorder + slab bookkeeping).
    pub put_lock_hold: SimSpan,
    /// Out-of-lock CPU per GET that hits the thread's hot-key cache.
    pub hot_get_work: SimSpan,
    /// Serialized hold per hot GET (entry already near the LRU head).
    pub hot_get_lock_hold: SimSpan,
    /// Capacity of each server thread's hot-key cache. `0` means
    /// *auto*: 1/64 of the store capacity (CPU caches cover a small
    /// fraction of the dataset, whatever its absolute size).
    pub hot_cache_per_thread: usize,
}

impl Default for McdCosts {
    fn default() -> Self {
        McdCosts {
            get_work: SimSpan::nanos(4_000),
            put_work: SimSpan::nanos(6_000),
            get_lock_hold: SimSpan::nanos(700),
            put_lock_hold: SimSpan::nanos(2_500),
            hot_get_work: SimSpan::nanos(1_000),
            hot_get_lock_hold: SimSpan::nanos(100),
            hot_cache_per_thread: 0,
        }
    }
}

/// The shared Memcached-style store.
pub struct McdStore {
    data: RefCell<LruCache<Vec<u8>, Vec<u8>>>,
    lock: SimLock,
    costs: McdCosts,
    capacity: usize,
}

/// One server thread's private view: the shared store plus its hot-key
/// cache.
pub struct McdThreadView {
    store: Rc<McdStore>,
    hot: RefCell<LruCache<Vec<u8>, ()>>,
}

impl McdStore {
    /// Creates a store bounded at `capacity` entries.
    pub fn new(capacity: usize, costs: McdCosts) -> Rc<Self> {
        Rc::new(McdStore {
            data: RefCell::new(LruCache::new(capacity)),
            lock: SimLock::new(),
            costs,
            capacity,
        })
    }

    /// The cost model in effect.
    pub fn costs(&self) -> &McdCosts {
        &self.costs
    }

    /// Stored entries.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-cost preload (setup phase, before timing starts).
    pub fn preload(&self, key: Vec<u8>, value: Vec<u8>) {
        self.data.borrow_mut().put(key, value);
    }

    /// Creates a per-server-thread view with its own hot-key cache.
    pub fn thread_view(self: &Rc<Self>) -> McdThreadView {
        let hot = match self.costs.hot_cache_per_thread {
            0 => (self.capacity / 64).max(8),
            n => n,
        };
        McdThreadView {
            store: Rc::clone(self),
            hot: RefCell::new(LruCache::new(hot)),
        }
    }
}

impl McdThreadView {
    /// Serves a GET with the modelled CPU and lock costs.
    pub async fn get(&self, thread: &ThreadCtx, key: &[u8]) -> Option<Vec<u8>> {
        let hot = self.hot.borrow_mut().get(&key.to_vec()).is_some();
        let costs = &self.store.costs;
        let (work, hold) = if hot {
            (costs.hot_get_work, costs.hot_get_lock_hold)
        } else {
            (costs.get_work, costs.get_lock_hold)
        };
        thread.busy(work).await;
        let guard = self.store.lock.lock().await;
        thread.busy(hold).await;
        let value = self.store.data.borrow_mut().get(&key.to_vec()).cloned();
        drop(guard);
        if value.is_some() {
            self.hot.borrow_mut().put(key.to_vec(), ());
        }
        value
    }

    /// Serves a DELETE with PUT-like costs (the LRU unlink is a write
    /// to the shared structure). Returns whether the key existed.
    pub async fn delete(&self, thread: &ThreadCtx, key: &[u8]) -> bool {
        let costs = &self.store.costs;
        thread.busy(costs.put_work).await;
        let guard = self.store.lock.lock().await;
        thread.busy(costs.put_lock_hold).await;
        let found = self.store.data.borrow_mut().remove(&key.to_vec()).is_some();
        drop(guard);
        self.hot.borrow_mut().remove(&key.to_vec());
        found
    }

    /// Serves a PUT with the modelled CPU and lock costs.
    pub async fn put(&self, thread: &ThreadCtx, key: &[u8], value: Vec<u8>) {
        let costs = &self.store.costs;
        thread.busy(costs.put_work).await;
        let guard = self.store.lock.lock().await;
        thread.busy(costs.put_lock_hold).await;
        self.store.data.borrow_mut().put(key.to_vec(), value);
        drop(guard);
        self.hot.borrow_mut().put(key.to_vec(), ());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_rnic::{Cluster, ClusterProfile};
    use rfp_simnet::Simulation;
    use std::cell::Cell;

    fn quick_costs() -> McdCosts {
        McdCosts {
            get_work: SimSpan::nanos(100),
            put_work: SimSpan::nanos(150),
            get_lock_hold: SimSpan::nanos(50),
            put_lock_hold: SimSpan::nanos(80),
            hot_get_work: SimSpan::nanos(20),
            hot_get_lock_hold: SimSpan::nanos(10),
            hot_cache_per_thread: 4,
        }
    }

    #[test]
    fn get_put_round_trip_with_costs() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let store = McdStore::new(100, quick_costs());
        let view = store.thread_view();
        let t = cluster.machine(0).thread("s");
        let ok = Rc::new(Cell::new(false));
        let o = Rc::clone(&ok);
        sim.spawn(async move {
            view.put(&t, b"key", b"value".to_vec()).await;
            assert_eq!(view.get(&t, b"key").await, Some(b"value".to_vec()));
            assert_eq!(view.get(&t, b"missing").await, None);
            o.set(true);
        });
        sim.run();
        assert!(ok.get());
        assert!(sim.now().as_nanos() > 0, "costs must consume time");
    }

    #[test]
    fn lock_serializes_threads() {
        // Two threads hammer the store; total time must reflect the
        // serialized lock holds (2 × 50ns × N) even though out-of-lock
        // work overlaps.
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let store = McdStore::new(100, quick_costs());
        store.preload(b"k".to_vec(), b"v".to_vec());
        const N: u64 = 100;
        for i in 0..2 {
            let view = store.thread_view();
            let t = cluster.machine(0).thread(format!("s{i}"));
            sim.spawn(async move {
                for _ in 0..N {
                    view.get(&t, b"miss-every-time-different").await;
                }
            });
        }
        sim.run();
        // Cold GETs: 100ns work (parallel) + 50ns hold (serial).
        // Serial floor: 2 threads × 100 ops × 50ns = 10µs.
        assert!(sim.now().as_nanos() >= 10_000, "{}", sim.now());
    }

    #[test]
    fn hot_keys_get_cheaper() {
        let mut sim = Simulation::new(0);
        let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 1);
        let store = McdStore::new(100, quick_costs());
        store.preload(b"hot".to_vec(), b"v".to_vec());
        let view = store.thread_view();
        let t = cluster.machine(0).thread("s");
        let timings = Rc::new(RefCell::new(Vec::new()));
        let out = Rc::clone(&timings);
        let h = sim.handle();
        sim.spawn(async move {
            for _ in 0..3 {
                let t0 = h.now();
                view.get(&t, b"hot").await;
                out.borrow_mut().push((h.now() - t0).as_nanos());
            }
        });
        sim.run();
        let timings = timings.borrow();
        // First access is cold (150ns), later ones hot (30ns).
        assert_eq!(timings[0], 150);
        assert_eq!(timings[1], 30);
        assert_eq!(timings[2], 30);
    }

    #[test]
    fn capacity_bound_evicts() {
        let store = McdStore::new(2, quick_costs());
        store.preload(b"a".to_vec(), vec![1]);
        store.preload(b"b".to_vec(), vec![2]);
        store.preload(b"c".to_vec(), vec![3]);
        assert_eq!(store.len(), 2);
    }
}
