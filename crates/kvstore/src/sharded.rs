//! Scale-out Jakiro: the RFP store sharded across multiple server
//! machines.
//!
//! The paper evaluates a single server (its bottleneck story is one
//! NIC's in-bound rate); its conclusion argues RFP "can be integrated
//! into many RPC-based systems", and its FaRM comparison cites a
//! 20-machine deployment. This module supplies that deployment shape:
//! keys are partitioned first across server machines, then across
//! server threads (two-level EREW), and every client holds one RFP
//! connection per (machine, thread) shard. Aggregate throughput scales
//! with server NICs until the clients' out-bound capacity binds.

use std::cell::RefCell;
use std::rc::Rc;

use rfp_core::{connect, serve_loop, RfpClient, RfpServerConn};
use rfp_rnic::{Cluster, Machine, ThreadCtx};
use rfp_simnet::{SimSpan, Simulation};
use rfp_workload::Op;

use crate::bucket::Partition;
use crate::hash::partition_of;
use crate::proto::{KvRequest, KvResponse};
use crate::systems::{KvStats, SystemConfig};

/// A running sharded deployment.
pub struct ShardedSystem {
    /// The cluster: machines `0..servers` are servers, the rest clients.
    pub cluster: Cluster,
    /// Shared measurements across all clients.
    pub stats: Rc<KvStats>,
    /// The server machines.
    pub server_machines: Vec<Rc<Machine>>,
    /// All client threads.
    pub client_threads: Vec<Rc<ThreadCtx>>,
    /// All client connection endpoints.
    pub rfp_clients: Vec<Rc<RfpClient>>,
}

impl ShardedSystem {
    /// Discards warm-up on every counter.
    pub fn reset_measurements(&self) {
        self.stats.reset();
        for i in 0..self.cluster.len() {
            self.cluster.machine(i).nic().reset_counters();
        }
        for t in &self.client_threads {
            t.reset_utilization();
        }
        for c in &self.rfp_clients {
            c.stats().reset();
        }
    }

    /// Total server in-bound ops per completed request (should stay ≈2
    /// regardless of shard count).
    pub fn inbound_ops_per_request(&self) -> f64 {
        let ops: u64 = self
            .server_machines
            .iter()
            .map(|m| m.nic().counters().inbound_ops)
            .sum();
        let done = self.stats.completed.get();
        if done == 0 {
            return 0.0;
        }
        ops as f64 / done as f64
    }

    /// Out-bound ops across all server NICs (zero on the RFP fast path).
    pub fn server_outbound_ops(&self) -> u64 {
        self.server_machines
            .iter()
            .map(|m| m.nic().counters().outbound_ops)
            .sum()
    }
}

/// Spawns Jakiro sharded over `servers` server machines.
///
/// `cfg.client_machines` client machines follow the servers in the
/// cluster; `cfg.server_threads` is per server machine.
///
/// # Panics
///
/// Panics if `servers` is zero.
pub fn spawn_sharded_jakiro(
    sim: &mut Simulation,
    cfg: &SystemConfig,
    servers: usize,
) -> ShardedSystem {
    assert!(servers > 0, "need at least one server shard");
    let cluster = Cluster::new(sim, cfg.profile.clone(), servers + cfg.client_machines);
    let server_machines: Vec<Rc<Machine>> = (0..servers).map(|i| cluster.machine(i)).collect();
    let stats = Rc::new(KvStats::default());
    let rfp_cfg = cfg.rfp_sized();

    // Two-level shard space: machine-major, thread-minor.
    let total_shards = servers * cfg.server_threads;
    let per_part = (cfg.spec.key_count as usize * 2 / total_shards / 8).max(64);
    let partitions: Vec<Rc<RefCell<Partition>>> = (0..total_shards)
        .map(|_| Rc::new(RefCell::new(Partition::new(per_part))))
        .collect();
    {
        let mut gen = cfg.spec.generator(cfg.seed);
        for (key, value) in gen.preload(cfg.spec.key_count) {
            let shard = partition_of(&key, total_shards);
            partitions[shard].borrow_mut().put(&key, &value);
        }
    }

    // conns[server][thread] = the connections that (machine, thread)
    // shard polls.
    let mut server_conns: Vec<Vec<Vec<Rc<RfpServerConn>>>> = (0..servers)
        .map(|_| (0..cfg.server_threads).map(|_| Vec::new()).collect())
        .collect();
    let mut rfp_clients = Vec::new();
    let mut client_threads = Vec::new();

    for m in 0..cfg.client_machines {
        let client_idx = servers + m;
        let client_m = cluster.machine(client_idx);
        for t in 0..cfg.clients_per_machine {
            let thread = client_m.thread(format!("c{m}.{t}"));
            client_threads.push(Rc::clone(&thread));
            let mut conns = Vec::with_capacity(total_shards);
            for (srv, srv_conns) in server_conns.iter_mut().enumerate() {
                for tconns in srv_conns.iter_mut() {
                    let (cl, sc) = connect(
                        &client_m,
                        &server_machines[srv],
                        cluster.qp(client_idx, srv),
                        cluster.qp(srv, client_idx),
                        rfp_cfg.clone(),
                    );
                    let cl = Rc::new(cl);
                    rfp_clients.push(Rc::clone(&cl));
                    conns.push(cl);
                    tconns.push(Rc::new(sc));
                }
            }

            let spec = cfg.spec.clone();
            let seed = rfp_simnet::derive_seed(cfg.seed, (m * 64 + t) as u64 + 1);
            let st = stats.clone();
            let h = sim.handle();
            sim.spawn(async move {
                let mut gen = spec.generator(seed);
                loop {
                    let op = gen.next_op();
                    let shard = partition_of(op.key(), total_shards);
                    let conn = &conns[shard];
                    let req = match &op {
                        Op::Get { key } => KvRequest::Get { key }.encode(),
                        Op::Put { key, value } => KvRequest::Put { key, value }.encode(),
                    };
                    let t0 = h.now();
                    let out = conn.call(&thread, &req).await;
                    let resp = KvResponse::decode(&out.data).expect("server response");
                    crate::systems::record_outcome(&st, &op, &resp, h.now() - t0);
                }
            });
        }
    }

    for (srv, srv_conns) in server_conns.into_iter().enumerate() {
        for (t, conns) in srv_conns.into_iter().enumerate() {
            let thread = server_machines[srv].thread(format!("srv{srv}.s{t}"));
            let partition = Rc::clone(&partitions[srv * cfg.server_threads + t]);
            let extra = cfg.extra_process;
            let handler = move |req: &[u8]| {
                let parsed = KvRequest::decode(req).expect("well-formed request");
                let (resp, work) =
                    crate::systems::apply_to_partition(&mut partition.borrow_mut(), &parsed);
                (resp.encode(), work + extra)
            };
            sim.spawn(serve_loop(thread, conns, handler, SimSpan::nanos(100)));
        }
    }

    ShardedSystem {
        cluster,
        stats,
        server_machines,
        client_threads,
        rfp_clients,
    }
}
