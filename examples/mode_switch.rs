//! The hybrid mechanism, live: watch a connection ride out a server
//! load spike.
//!
//! A client hammers an RFP service while the server's per-request
//! process time jumps from sub-microsecond to 30 µs and back. The §3.2
//! machinery reacts: after two consecutive calls exceed `R` failed
//! fetches, the connection switches to server-reply (client CPU drops);
//! when the server-reported process time shrinks again, it switches
//! back. The attached trace log captures the exact switch instants.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mode_switch
//! ```

use std::cell::Cell;
use std::rc::Rc;

use rfp_repro::core::{connect, serve_loop, Mode, RfpConfig};
use rfp_repro::rnic::{Cluster, ClusterProfile};
use rfp_repro::simnet::{SimSpan, Simulation, TraceLog};

fn main() {
    let mut sim = Simulation::new(5);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let (cm, sm) = (cluster.machine(0), cluster.machine(1));

    let trace = TraceLog::new(64);
    let (client, conn) = connect(
        &cm,
        &sm,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig {
            trace: Some(trace.clone()),
            ..RfpConfig::default()
        },
    );
    let client = Rc::new(client);

    // Server whose process time the load generator will spike.
    let process_us = Rc::new(Cell::new(0u64));
    let p = Rc::clone(&process_us);
    let st = sm.thread("server");
    sim.spawn(serve_loop(
        st,
        vec![Rc::new(conn)],
        move |req: &[u8]| (req.to_vec(), SimSpan::micros(p.get())),
        SimSpan::nanos(100),
    ));

    // The load spike: calm → overloaded (t=2ms) → recovered (t=6ms).
    let p2 = Rc::clone(&process_us);
    let h = sim.handle();
    sim.spawn(async move {
        h.sleep(SimSpan::millis(2)).await;
        println!("[{}] server load spike begins (P -> 30us)", h.now());
        p2.set(30);
        h.sleep(SimSpan::millis(4)).await;
        println!("[{}] server recovers (P -> 0)", h.now());
        p2.set(0);
    });

    // The client: continuous calls; sample the mode and CPU as we go.
    let cl = Rc::clone(&client);
    let ct = cm.thread("client");
    let ct2 = Rc::clone(&ct);
    let h2 = sim.handle();
    sim.spawn(async move {
        let mut last_mode = Mode::RemoteFetch;
        let mut window_start = h2.now();
        loop {
            let out = cl.call(&ct2, b"payload").await;
            if out.info.completed_in != last_mode {
                last_mode = out.info.completed_in;
            }
            // Periodic status line.
            if (h2.now() - window_start) > SimSpan::millis(1) {
                println!(
                    "[{}] mode={:?} client-cpu={:>5.1}% mean-attempts={:.2}",
                    h2.now(),
                    cl.mode(),
                    ct2.utilization() * 100.0,
                    cl.stats().mean_attempts(),
                );
                ct2.reset_utilization();
                cl.stats().reset();
                window_start = h2.now();
            }
        }
    });

    sim.run_for(SimSpan::millis(9));

    println!("\n--- trace ({} events) ---", trace.len());
    let mut out = Vec::new();
    trace.dump(&mut out).expect("dump");
    print!("{}", String::from_utf8_lossy(&out));
    let switches = trace.category("rfp.mode");
    println!(
        "\n{} mode switches: overload detected {} after the spike, recovery {} after it ended",
        switches.len(),
        switches
            .first()
            .map(|e| format!(
                "{}",
                e.at.since(rfp_repro::simnet::SimTime::from_nanos(2_000_000))
            ))
            .unwrap_or_default(),
        switches
            .last()
            .map(|e| format!(
                "{}",
                e.at.since(rfp_repro::simnet::SimTime::from_nanos(6_000_000))
            ))
            .unwrap_or_default(),
    );
}
