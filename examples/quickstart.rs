//! Quickstart: an RFP RPC service on a simulated RDMA cluster.
//!
//! Builds two machines behind a switch, runs an uppercase-echo server
//! over the Remote Fetching Paradigm, and shows the properties the
//! paper is about: results are *fetched* by the client with one-sided
//! READs, so the server NIC serves only in-bound operations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::rc::Rc;

use rfp_repro::core::{connect, serve_loop, RfpConfig};
use rfp_repro::rnic::{Cluster, ClusterProfile};
use rfp_repro::simnet::{SimSpan, Simulation};

fn main() {
    // A deterministic simulation: same seed, same run, down to the
    // nanosecond.
    let mut sim = Simulation::new(7);

    // Two machines shaped like the paper's testbed (ConnectX-3-class
    // NICs, one switch).
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 2);
    let client_machine = cluster.machine(0);
    let server_machine = cluster.machine(1);

    // One RFP connection: request/response buffers in server memory, a
    // landing zone at the client, and QPs both ways (the reverse QP is
    // used only if the hybrid mechanism falls back to server-reply).
    let (client, server_conn) = connect(
        &client_machine,
        &server_machine,
        cluster.qp(0, 1),
        cluster.qp(1, 0),
        RfpConfig::default(),
    );

    // The server: an ordinary RPC handler — no application-specific
    // lock-free data structures, unlike server-bypass designs.
    let server_thread = server_machine.thread("server");
    sim.spawn(serve_loop(
        server_thread,
        vec![Rc::new(server_conn)],
        |req: &[u8]| {
            let reply = req.to_ascii_uppercase();
            (reply, SimSpan::nanos(300)) // 300ns of processing
        },
        SimSpan::nanos(100),
    ));

    // The client: calls look like classic RPC; under the hood the
    // response is remote-fetched.
    let client_thread = client_machine.thread("client");
    let h = sim.handle();
    let cl = Rc::new(client);
    let cl2 = Rc::clone(&cl);
    sim.spawn(async move {
        for msg in ["hello", "remote", "fetching", "paradigm"] {
            let t0 = h.now();
            let out = cl2.call(&client_thread, msg.as_bytes()).await;
            println!(
                "call({msg:10}) -> {:10}  latency {:>8}  fetch attempts {}",
                String::from_utf8_lossy(&out.data),
                format!("{}", out.info.latency),
                out.info.attempts,
            );
            let _ = t0;
        }
    });

    sim.run_for(SimSpan::millis(1));

    // The paradigm's signature: the server NIC issued no out-bound ops.
    let server_nic = server_machine.nic().counters();
    println!(
        "\nserver NIC: {} in-bound ops, {} out-bound ops (RFP keeps the fast path in-bound only)",
        server_nic.inbound_ops, server_nic.outbound_ops
    );
    println!(
        "client stats: {} calls, mean fetch attempts {:.2}",
        cl.stats().calls(),
        cl.stats().mean_attempts()
    );
}
