//! A Memcached-style usage scenario: Jakiro as a look-aside cache.
//!
//! Runs the full Jakiro system (6 server threads, 35 client threads on
//! 7 machines — the paper's peak configuration) against the paper's
//! default workload (16 B keys, 32 B values, uniform, 95% GET) and
//! reports throughput, latency percentiles, and the round-trip
//! accounting of §4.3, next to the ServerReply baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example kv_cache
//! ```

use rfp_repro::kvstore::{spawn_jakiro, spawn_server_reply_kv, KvSystem, SystemConfig};
use rfp_repro::simnet::{SimSpan, Simulation};
use rfp_repro::workload::WorkloadSpec;

fn run(name: &str, spawn: impl FnOnce(&mut Simulation, &SystemConfig) -> KvSystem) {
    let cfg = SystemConfig {
        spec: WorkloadSpec {
            key_count: 4_000, // scaled-down key population (see DESIGN.md)
            ..WorkloadSpec::paper_default()
        },
        ..SystemConfig::default()
    };
    let mut sim = Simulation::new(cfg.seed);
    let sys = spawn(&mut sim, &cfg);

    // Warm up, then measure a clean window.
    sim.run_for(SimSpan::millis(1));
    sys.reset_measurements();
    let t0 = sim.now();
    sim.run_for(SimSpan::millis(5));
    let secs = (sim.now() - t0).as_secs_f64();

    let s = &sys.stats;
    let mops = s.completed.get() as f64 / secs / 1e6;
    println!("== {name} ==");
    println!("  throughput        : {mops:.2} MOPS");
    println!(
        "  latency mean/p50/p99 : {} / {} / {}",
        s.latency.mean().unwrap(),
        s.latency.percentile(50.0).unwrap(),
        s.latency.percentile(99.0).unwrap(),
    );
    println!(
        "  ops                : {} GET ({} misses), {} PUT",
        s.gets.get(),
        s.misses.get(),
        s.puts.get()
    );
    println!(
        "  server in-bound ops/request : {:.3}   (paper: 2.005 for Jakiro)",
        sys.inbound_ops_per_request()
    );
    let out = sys.server_machine.nic().counters().outbound_ops;
    println!("  server out-bound ops        : {out}");
    println!();
}

fn main() {
    run("Jakiro (RFP)", spawn_jakiro);
    run("ServerReply baseline", spawn_server_reply_kv);
    println!("Jakiro keeps the server NIC in-bound-only and lands ~2 in-bound ops per request;");
    println!(
        "ServerReply burns one out-bound WRITE per request and caps at the NIC's out-bound rate."
    );
}
