//! Scale-out: Jakiro sharded across multiple server machines.
//!
//! The paper's single-server bottleneck is one NIC's in-bound rate
//! (~11.26 MOPS ⇒ ~5.6 MOPS of requests). Sharding the key space over
//! more server machines multiplies that pipe; this example sweeps the
//! shard count and prints the aggregate throughput and the invariants
//! that must survive scale-out (≈2 in-bound ops per request, zero
//! server out-bound ops).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sharded_cluster
//! ```

use rfp_repro::kvstore::{spawn_sharded_jakiro, SystemConfig};
use rfp_repro::simnet::{SimSpan, Simulation};
use rfp_repro::workload::WorkloadSpec;

fn main() {
    println!("shards  clients  throughput  inbound-ops/req  server outbound");
    for (servers, client_machines) in [(1usize, 7usize), (2, 14), (3, 21), (4, 28)] {
        let cfg = SystemConfig {
            client_machines,
            clients_per_machine: 5,
            spec: WorkloadSpec {
                key_count: 4_000,
                ..WorkloadSpec::paper_default()
            },
            ..SystemConfig::default()
        };
        let mut sim = Simulation::new(cfg.seed);
        let sys = spawn_sharded_jakiro(&mut sim, &cfg, servers);
        sim.run_for(SimSpan::millis(1));
        sys.reset_measurements();
        let window = SimSpan::millis(4);
        sim.run_for(window);
        let mops = sys.stats.completed.get() as f64 / window.as_secs_f64() / 1e6;
        println!(
            "{servers:>6}  {:>7}  {mops:>7.2} MOPS  {:>13.3}  {:>13}",
            client_machines * 5,
            sys.inbound_ops_per_request(),
            sys.server_outbound_ops(),
        );
    }
    println!("\nEach shard contributes an independent in-bound pipe; the RFP");
    println!("invariants (2 in-bound ops per request, no server out-bound RDMA)");
    println!("hold at every scale.");
}
