//! A remote statistics service — the kind of application the paper's
//! introduction says server-bypass designs can't serve without a
//! from-scratch redesign ("a data structure designed for serving
//! GET/PUT on a key-value store cannot be used for other kinds of
//! applications, such as those with simple statistic operations").
//!
//! With RFP, the service is just RPC handlers over ordinary server-side
//! state: clients ask for windowed aggregates over a metric stream the
//! server ingests, and the responses are remote-fetched at in-bound
//! RDMA speed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example stats_service
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use rfp_repro::core::{connect, serve_loop, RfpConfig};
use rfp_repro::rnic::{Cluster, ClusterProfile};
use rfp_repro::simnet::{SimSpan, Simulation};

/// Request ops: one byte tag + little-endian operands.
const OP_RECORD: u8 = 1; // record(value: i64)
const OP_SUM: u8 = 2; // sum(last_n: u32)
const OP_MAX: u8 = 3; // max(last_n: u32)
const OP_MEAN: u8 = 4; // mean(last_n: u32)

fn req_record(v: i64) -> Vec<u8> {
    let mut b = vec![OP_RECORD];
    b.extend_from_slice(&v.to_le_bytes());
    b
}

fn req_window(op: u8, n: u32) -> Vec<u8> {
    let mut b = vec![op];
    b.extend_from_slice(&n.to_le_bytes());
    b
}

fn main() {
    let mut sim = Simulation::new(11);
    let cluster = Cluster::new(&mut sim, ClusterProfile::paper_testbed(), 3);
    let server_m = cluster.machine(0);

    // Shared metric log on the server (single server thread ⇒ plain
    // RefCell, no locks — RFP keeps server code ordinary).
    let samples: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(Vec::new()));

    // Two client machines: one ingests readings, one queries aggregates.
    let mut conns = Vec::new();
    let mut clients = Vec::new();
    for (m, name) in [(1, "ingest"), (2, "analyst")] {
        let client_m = cluster.machine(m);
        let (cl, sc) = connect(
            &client_m,
            &server_m,
            cluster.qp(m, 0),
            cluster.qp(0, m),
            RfpConfig::default(),
        );
        conns.push(Rc::new(sc));
        clients.push((Rc::new(cl), client_m.thread(name)));
    }

    let log = Rc::clone(&samples);
    let server_thread = server_m.thread("server");
    sim.spawn(serve_loop(
        server_thread,
        conns,
        move |req: &[u8]| {
            let mut log = log.borrow_mut();
            match req[0] {
                OP_RECORD => {
                    let v = i64::from_le_bytes(req[1..9].try_into().expect("8 bytes"));
                    log.push(v);
                    (vec![1], SimSpan::nanos(120))
                }
                op => {
                    let n = u32::from_le_bytes(req[1..5].try_into().expect("4 bytes")) as usize;
                    let window = &log[log.len().saturating_sub(n)..];
                    let out: i64 = match op {
                        OP_SUM => window.iter().sum(),
                        OP_MAX => window.iter().copied().max().unwrap_or(0),
                        OP_MEAN if !window.is_empty() => {
                            window.iter().sum::<i64>() / window.len() as i64
                        }
                        _ => 0,
                    };
                    // Cost scales with the scanned window.
                    let cost = SimSpan::nanos(100 + window.len() as u64 / 4);
                    (out.to_le_bytes().to_vec(), cost)
                }
            }
        },
        SimSpan::nanos(100),
    ));

    // Ingest: a sawtooth signal.
    let (ingest, ingest_t) = clients[0].clone();
    sim.spawn(async move {
        for i in 0..500i64 {
            ingest.call(&ingest_t, &req_record((i % 100) - 50)).await;
        }
    });

    // Analyst: periodic aggregates over the trailing window.
    let (analyst, analyst_t) = clients[1].clone();
    let h = sim.handle();
    sim.spawn(async move {
        for round in 1..=5 {
            h.sleep(SimSpan::micros(400)).await;
            let sum = analyst.call(&analyst_t, &req_window(OP_SUM, 100)).await;
            let max = analyst.call(&analyst_t, &req_window(OP_MAX, 100)).await;
            let mean = analyst.call(&analyst_t, &req_window(OP_MEAN, 100)).await;
            let dec = |r: &rfp_repro::core::CallResult| {
                i64::from_le_bytes(r.data[..8].try_into().expect("8 bytes"))
            };
            println!(
                "round {round}: window(100) sum={:6} max={:4} mean={:4}  (t={})",
                dec(&sum),
                dec(&max),
                dec(&mean),
                h.now(),
            );
        }
    });

    sim.run_for(SimSpan::millis(4));
    println!(
        "\ningested {} samples; analyst mean fetch attempts {:.2}; server out-bound ops {}",
        samples.borrow().len(),
        clients[1].0.stats().mean_attempts(),
        server_m.nic().counters().outbound_ops,
    );
}
