//! The §3.2 parameter-selection procedure in action.
//!
//! RFP needs two parameters: the retry threshold `R` and the fetch size
//! `F`. The paper bounds the search to `R ∈ [1, N]`, `F ∈ [L, H]` —
//! all three bounds derived from the hardware — then enumerates
//! Equation 2 over a pre-run's sampled result sizes. This example shows
//! each stage: the hardware brackets, the chosen parameters for several
//! workload shapes, and a simulation cross-check that the chosen fetch
//! size actually avoids second READs for the common case.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example param_tuning
//! ```

use rfp_repro::core::{ParamSelector, WorkloadSample};
use rfp_repro::rnic::{ClusterProfile, NicProfile};
use rfp_repro::simnet::SimSpan;
use rfp_repro::workload::ValueSize;

fn main() {
    let profile = ClusterProfile::paper_testbed();
    let selector = ParamSelector::new(profile.nic.clone(), profile.link.clone());

    // Stage 1: hardware brackets.
    let (l, h) = selector.detect_l_h();
    println!("hardware brackets from the IOPS-vs-size curve: L = {l} B, H = {h} B");
    let probe = WorkloadSample {
        result_sizes: vec![1],
        process_time: SimSpan::ZERO,
        request_size: 64,
        client_threads: 35,
    };
    let n = selector.derive_n(&probe);
    println!("retry budget from the Figure 9 crossover:      N = {n}");
    println!("(the paper's ConnectX-3 yields L=256, H=1024, N=5)\n");

    // Stage 2: per-workload selection.
    println!("{:<34} {:>4} {:>6}", "workload (result sizes)", "R", "F");
    for (label, values) in [
        ("fixed 32 B (paper default)", ValueSize::Fixed(32)),
        ("fixed 600 B", ValueSize::Fixed(600)),
        (
            "uniform 32..2048 B",
            ValueSize::Uniform { min: 32, max: 2048 },
        ),
        (
            "uniform 32..8192 B (§4.4.3)",
            ValueSize::Uniform { min: 32, max: 8192 },
        ),
    ] {
        let sample = WorkloadSample {
            result_sizes: values.samples(64, 3).iter().map(|s| s + 5).collect(),
            process_time: SimSpan::nanos(200),
            request_size: 64,
            client_threads: 35,
        };
        let p = selector.select(&sample);
        println!("{label:<34} {:>4} {:>6}", p.r, p.f);
    }

    // Stage 3: why it matters — throughput estimates across F for the
    // 600 B workload (the interior optimum the paper's Figure 18 shows).
    println!("\nmodelled Jakiro-style throughput for 600 B results:");
    let sample = WorkloadSample {
        result_sizes: vec![605],
        process_time: SimSpan::nanos(200),
        request_size: 64,
        client_threads: 35,
    };
    for f in [256usize, 448, 640, 1024] {
        let t = selector.rfp_throughput(5, f, &sample, 605);
        let second_read = if f < 605 + 16 { "yes" } else { "no " };
        println!("  F = {f:>5}: {t:>5.2} MOPS   (second READ needed: {second_read})");
    }
    println!("\nundersized F halves the op budget; oversized F wastes line rate —");
    println!("the enumeration lands on the smallest F that covers the common result.");

    // Show the 20 Gbps variant shifts the brackets.
    let slow = ParamSelector::new(NicProfile::connectx_20g(), profile.link.clone());
    let (l2, h2) = slow.detect_l_h();
    println!("\non the 20 Gbps NIC variant the brackets move: L = {l2} B, H = {h2} B");
}
